//! The enhanced INT8 decode buffer with a universal scale.

use crate::error::CacheError;
use turbo_quant::symmetric::{SymQuantized, SYM_INT8_DIVISOR};
use turbo_tensor::Matrix;

/// Headroom multiplier applied to the first token's range when the buffer
/// opens. The paper clamps outliers against a universal scale; 4× headroom
/// makes clamping rare (later tokens must exceed 4× the opening token's
/// peak) while INT8 still leaves ~30 codes of resolution per unit of the
/// opening range — far finer than the INT4/2 resident cache.
const UNIVERSAL_SCALE_HEADROOM: f32 = 4.0;

/// An INT8 token buffer whose scale is fixed at open time.
///
/// Rows are tokens, columns are head channels. The first appended row
/// establishes the *universal scale* `s = headroom · max|x| / 119`; later
/// rows are quantized with that same scale, clamping to ±127 — so earlier
/// rows never need recompression (subsection 3.3).
#[derive(Clone, Debug, PartialEq)]
pub struct Int8Buffer {
    codes: Vec<i8>,
    rows: usize,
    d: usize,
    scale: Option<f32>,
    clamped: u64,
}

impl Int8Buffer {
    /// Creates an empty buffer for `d`-channel tokens.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "channel count must be positive");
        Self {
            codes: Vec::new(),
            rows: 0,
            d,
            scale: None,
            clamped: 0,
        }
    }

    /// Reassembles a buffer from raw parts (deserialization path).
    pub(crate) fn from_parts(
        codes: Vec<i8>,
        rows: usize,
        d: usize,
        scale: Option<f32>,
        clamped: u64,
    ) -> Self {
        assert!(d > 0, "channel count must be positive");
        assert_eq!(codes.len(), rows * d, "code length mismatch");
        assert!(
            rows == 0 || scale.is_some(),
            "non-empty buffer needs a scale"
        );
        Self {
            codes,
            rows,
            d,
            scale,
            clamped,
        }
    }

    /// Appends one token row, establishing the universal scale if this is
    /// the first row since the last [`Int8Buffer::clear`].
    ///
    /// Returns the number of clamped (out-of-range) elements in this row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != d` or the row contains non-finite values.
    /// [`Int8Buffer::try_append`] is the non-panicking equivalent.
    pub fn append(&mut self, row: &[f32]) -> usize {
        match self.try_append(row) {
            Ok(clamped) => clamped,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking [`Int8Buffer::append`]: validates the row and leaves
    /// the buffer untouched on error, so a caller can sanitize or degrade
    /// and retry.
    ///
    /// # Errors
    ///
    /// [`CacheError::WidthMismatch`] if `row.len() != d`;
    /// [`CacheError::NonFinite`] naming the first bad channel if the row
    /// contains NaN/±Inf.
    pub fn try_append(&mut self, row: &[f32]) -> Result<usize, CacheError> {
        if row.len() != self.d {
            return Err(CacheError::WidthMismatch {
                expected: self.d,
                got: row.len(),
            });
        }
        if let Some(channel) = row.iter().position(|x| !x.is_finite()) {
            return Err(CacheError::NonFinite { channel });
        }
        let scale = *self.scale.get_or_insert_with(|| {
            let abs_max = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            if abs_max == 0.0 {
                1.0
            } else {
                // Divide before multiplying: `abs_max * headroom` overflows
                // to Inf for abs_max within headroom× of f32::MAX, which
                // would silently zero every code in the buffer. The cap
                // keeps every reconstruction `code · scale` finite even
                // when rounding pushes a code past abs_max / scale.
                // /128 not /127: a power-of-two divide is exact in f32,
                // so 127 · cap stays strictly below f32::MAX.
                (abs_max / SYM_INT8_DIVISOR * UNIVERSAL_SCALE_HEADROOM).min(f32::MAX / 128.0)
            }
        });
        let mut clamped_here = 0usize;
        for &x in row {
            let q = (x / scale).round();
            if !(-127.0..=127.0).contains(&q) {
                clamped_here += 1;
            }
            self.codes.push(q.clamp(-127.0, 127.0) as i8);
        }
        self.rows += 1;
        self.clamped += clamped_here as u64;
        Ok(clamped_here)
    }

    /// Number of buffered tokens.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the buffer holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Channel count per token.
    pub fn channels(&self) -> usize {
        self.d
    }

    /// The universal scale, if established.
    pub fn scale(&self) -> Option<f32> {
        self.scale
    }

    /// Total elements clamped since the buffer was created.
    pub fn clamped_elements(&self) -> u64 {
        self.clamped
    }

    /// The INT8 codes, row-major `rows × d`.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// Snapshot of the buffer as a [`SymQuantized`] block (for integer
    /// attention over the buffered tokens).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn as_sym_quantized(&self) -> SymQuantized {
        assert!(!self.is_empty(), "cannot snapshot an empty buffer");
        SymQuantized::from_parts(self.codes.clone(), self.scale.unwrap(), self.rows, self.d)
    }

    /// Dequantizes the buffered tokens to f32.
    pub fn dequantize(&self) -> Matrix {
        match self.scale {
            None => Matrix::zeros(0, self.d),
            Some(s) => Matrix::from_vec(
                self.rows,
                self.d,
                self.codes.iter().map(|&q| q as f32 * s).collect(),
            ),
        }
    }

    /// Empties the buffer; the next append establishes a fresh universal
    /// scale. The code vector keeps its capacity, so steady-state
    /// append/flush cycles stop allocating once the buffer has grown to
    /// its working size.
    pub fn clear(&mut self) {
        self.codes.clear();
        self.rows = 0;
        self.scale = None;
    }

    /// Pre-allocates code storage for `rows` tokens so that appends up to
    /// that many tokens never reallocate — the decode hot path reserves
    /// the flush capacity once at cache construction.
    pub fn reserve_rows(&mut self, rows: usize) {
        let want = rows.saturating_mul(self.d);
        if self.codes.capacity() < want {
            self.codes.reserve(want - self.codes.len());
        }
    }

    /// Storage footprint: codes plus the scale.
    pub fn storage_bytes(&self) -> usize {
        self.codes.len() + std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_row_sets_scale_with_headroom() {
        let mut b = Int8Buffer::new(4);
        b.append(&[1.0, -2.0, 0.5, 0.0]);
        let s = b.scale().unwrap();
        assert!((s - 2.0 * UNIVERSAL_SCALE_HEADROOM / SYM_INT8_DIVISOR).abs() < 1e-7);
    }

    #[test]
    fn later_rows_reuse_scale_and_clamp() {
        let mut b = Int8Buffer::new(2);
        b.append(&[1.0, -1.0]);
        let s = b.scale().unwrap();
        // A much larger token must clamp, not rescale.
        let clamped = b.append(&[100.0, 0.5]);
        assert_eq!(clamped, 1);
        assert_eq!(b.scale().unwrap(), s);
        assert_eq!(b.codes()[2], 127);
        assert_eq!(b.clamped_elements(), 1);
    }

    #[test]
    fn round_trip_within_headroom_is_accurate() {
        let mut b = Int8Buffer::new(3);
        b.append(&[1.0, -1.0, 0.5]);
        b.append(&[1.5, 0.2, -1.9]); // within 4x headroom of max|first| = 1
        let back = b.dequantize();
        assert!((back.get(1, 0) - 1.5).abs() < 0.02);
        assert!((back.get(1, 2) + 1.9).abs() < 0.02);
        assert_eq!(b.clamped_elements(), 0);
    }

    #[test]
    fn clear_resets_scale() {
        let mut b = Int8Buffer::new(1);
        b.append(&[1.0]);
        let s1 = b.scale().unwrap();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.scale(), None);
        b.append(&[10.0]);
        assert!(b.scale().unwrap() > s1);
    }

    #[test]
    fn zero_first_row_gets_unit_scale() {
        let mut b = Int8Buffer::new(2);
        b.append(&[0.0, 0.0]);
        assert_eq!(b.scale(), Some(1.0));
        b.append(&[3.0, -3.0]);
        assert_eq!(b.codes()[2], 3);
    }

    #[test]
    fn snapshot_matches_dequantize() {
        let mut b = Int8Buffer::new(2);
        b.append(&[0.7, -0.3]);
        b.append(&[0.1, 0.9]);
        let snap = b.as_sym_quantized();
        assert_eq!(snap.dequantize(), b.dequantize());
        assert_eq!(snap.rows(), 2);
    }

    #[test]
    fn empty_dequantize_has_zero_rows() {
        let b = Int8Buffer::new(4);
        assert_eq!(b.dequantize().shape(), (0, 4));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        Int8Buffer::new(3).append(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_panics() {
        Int8Buffer::new(1).append(&[f32::NAN]);
    }

    #[test]
    fn try_append_reports_first_bad_channel_and_leaves_buffer_clean() {
        let mut b = Int8Buffer::new(3);
        assert_eq!(
            b.try_append(&[1.0, f32::NAN, f32::INFINITY]),
            Err(CacheError::NonFinite { channel: 1 })
        );
        assert_eq!(
            b.try_append(&[1.0, 2.0]),
            Err(CacheError::WidthMismatch { expected: 3, got: 2 })
        );
        assert!(b.is_empty(), "failed appends must not mutate the buffer");
        assert_eq!(b.scale(), None);
        assert_eq!(b.try_append(&[1.0, 2.0, 3.0]), Ok(0));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn reserve_rows_makes_appends_and_clear_allocation_stable() {
        let mut b = Int8Buffer::new(4);
        b.reserve_rows(8);
        let cap = b.codes.capacity();
        assert!(cap >= 32);
        for cycle in 0..3 {
            for t in 0..8 {
                b.append(&[t as f32, 1.0, -1.0, 0.5 * cycle as f32]);
            }
            assert_eq!(b.codes.capacity(), cap, "append grew capacity");
            b.clear();
            assert_eq!(b.codes.capacity(), cap, "clear dropped capacity");
        }
    }

    #[test]
    fn extreme_outlier_first_row_keeps_scale_finite() {
        // Regression: the universal scale used to compute
        // `abs_max * headroom / divisor`, which overflows to Inf when
        // abs_max is within headroom× of f32::MAX — every subsequent code
        // then quantized to 0 silently. Dividing first keeps it finite.
        let mut b = Int8Buffer::new(2);
        b.append(&[f32::MAX, -f32::MAX / 2.0]);
        let s = b.scale().unwrap();
        assert!(s.is_finite() && s > 0.0, "scale must stay finite, got {s}");
        // The opening row itself must round-trip to nonzero values.
        let back = b.dequantize();
        assert!(back.get(0, 0) > 0.0, "outlier collapsed to {}", back.get(0, 0));
        assert!(back.get(0, 1) < 0.0);
        // And ordinary rows afterwards still quantize (to tiny codes).
        b.append(&[0.0, 0.0]);
        assert_eq!(b.len(), 2);
        assert!(b.dequantize().as_slice().iter().all(|x| x.is_finite()));
    }
}
