//! Binary (de)serialization of quantized KV caches.
//!
//! Serving systems persist prefix caches so a shared prompt (system
//! message, few-shot header) is prefilled once and reloaded per request.
//! TurboAttention's cache is particularly worth persisting — it is 4–5×
//! smaller than FP16 — so this module gives [`HeadKvCache`] a compact,
//! versioned, self-validating binary format:
//!
//! ```text
//! magic "TKVC" | version u16 | head_dim u32 | bits u8 | group u32 | n_b u32
//! | n_blocks u32 | blocks (K,V interleaved) | K buffer | V buffer
//! ```
//!
//! All integers little-endian. Format **v2** (current) appends a CRC32
//! checksum after every serialized block and buffer, covering that
//! element's own bytes, so storage-level corruption is detected
//! element-by-element instead of producing a plausible-but-wrong cache.
//! Format **v1** (no checksums) remains readable; [`serialize_head_cache_v1`]
//! still writes it for compatibility tests.
//!
//! Deserialization never panics on malformed input — every structural
//! violation surfaces as a [`PersistError`]. For payloads where the tail
//! is damaged but a prefix is intact, [`recover_head_cache`] salvages
//! the valid prefix and reports how many tokens must be re-prefilled.

use crate::buffer::Int8Buffer;
use crate::head::{HeadKvCache, KvCacheConfig};
use crate::stats::RecoveryReport;
use turbo_quant::progressive::GroupParams;
use turbo_quant::{BitWidth, PackedCodes, ProgressiveBlock};
use turbo_robust::{crc32, HealthEvent, HealthStats};

pub mod layer_wal;
pub mod wal;

/// Serializes `src` as little-endian f32s straight into `dst`
/// (`dst.len() == 4 * src.len()`). Bulk fixed-width stores instead of
/// per-element `extend_from_slice` keep WAL record construction off the
/// decode hot path's allocator and bounds-check budget.
pub(crate) fn fill_rows_le(dst: &mut [u8], src: &[f32]) {
    debug_assert_eq!(dst.len(), 4 * src.len());
    for (chunk, &x) in dst.chunks_exact_mut(4).zip(src) {
        chunk.copy_from_slice(&x.to_le_bytes());
    }
}

const MAGIC: &[u8; 4] = b"TKVC";
/// Current format: per-element CRC32 checksums.
const VERSION: u16 = 2;
/// Legacy checksum-free format, still readable.
const VERSION_V1: u16 = 1;

/// Errors produced when decoding a serialized cache.
#[derive(Debug, PartialEq, Eq)]
pub enum PersistError {
    /// The payload does not start with the `TKVC` magic.
    BadMagic,
    /// The payload's format version is not supported.
    UnsupportedVersion(u16),
    /// The payload ended before a field could be read.
    Truncated,
    /// A structural invariant failed (message describes which).
    Corrupt(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "payload is not a serialized KV cache"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported cache format version {v}")
            }
            PersistError::Truncated => write!(f, "payload ended unexpectedly"),
            PersistError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

// ------------------------------------------------------------- writing --

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self {
            buf: Vec::with_capacity(256),
        }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
}

fn bits_tag(bits: BitWidth) -> u8 {
    bits.bits() as u8
}

fn write_block(w: &mut Writer, b: &ProgressiveBlock) {
    w.u32(b.rows() as u32);
    w.u32(b.cols() as u32);
    w.u8(bits_tag(b.bits()));
    w.u32(b.group_size() as u32);
    w.f32(b.outer_scale());
    w.u32(b.group_params().len() as u32);
    for p in b.group_params() {
        w.u8(p.scale as u8);
        w.u8(p.zero as u8);
    }
    w.bytes(b.packed().bytes());
}

fn write_buffer(w: &mut Writer, b: &Int8Buffer) {
    w.u32(b.len() as u32);
    match b.scale() {
        Some(s) => {
            w.u8(1);
            w.f32(s);
        }
        None => w.u8(0),
    }
    w.u64(b.clamped_elements());
    let raw: Vec<u8> = b.codes().iter().map(|&c| c as u8).collect();
    w.bytes(&raw);
}

/// Writes one block, appending a CRC32 over its own bytes when the
/// format carries checksums (v2).
fn write_block_checked(w: &mut Writer, b: &ProgressiveBlock, checksums: bool) {
    let start = w.buf.len();
    write_block(w, b);
    if checksums {
        let crc = crc32(&w.buf[start..]);
        w.u32(crc);
    }
}

/// Writes one buffer, appending a CRC32 over its own bytes when the
/// format carries checksums (v2).
fn write_buffer_checked(w: &mut Writer, b: &Int8Buffer, checksums: bool) {
    let start = w.buf.len();
    write_buffer(w, b);
    if checksums {
        let crc = crc32(&w.buf[start..]);
        w.u32(crc);
    }
}

fn serialize_with_version(cache: &HeadKvCache, version: u16) -> Vec<u8> {
    let checksums = version >= 2;
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u16(version);
    w.u32(cache.head_dim() as u32);
    let cfg = cache.config();
    w.u8(bits_tag(cfg.bits));
    w.u32(cfg.group_size as u32);
    w.u32(cfg.buffer_capacity as u32);
    w.u32(cache.resident_blocks().len() as u32);
    for (kb, vb) in cache
        .resident_blocks()
        .iter()
        .zip(cache.resident_value_blocks())
    {
        write_block_checked(&mut w, kb, checksums);
        write_block_checked(&mut w, vb, checksums);
    }
    write_buffer_checked(&mut w, cache.key_buffer(), checksums);
    write_buffer_checked(&mut w, cache.value_buffer(), checksums);
    w.buf
}

/// Serializes a head cache to a compact binary payload in the current
/// (v2, checksummed) format.
pub fn serialize_head_cache(cache: &HeadKvCache) -> Vec<u8> {
    serialize_with_version(cache, VERSION)
}

/// Serializes in the legacy v1 (checksum-free) format — kept so
/// compatibility with old snapshots stays testable.
pub fn serialize_head_cache_v1(cache: &HeadKvCache) -> Vec<u8> {
    serialize_with_version(cache, VERSION_V1)
}

// ------------------------------------------------------------- reading --

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.buf.len() {
            return Err(PersistError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    /// Reads exactly `N` bytes into an array without any fallible
    /// conversion on the hot path.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], PersistError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }
    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }
    fn f32(&mut self) -> Result<f32, PersistError> {
        Ok(f32::from_le_bytes(self.take_array()?))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, PersistError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn bits_from_tag(tag: u8) -> Result<BitWidth, PersistError> {
    match tag {
        2 => Ok(BitWidth::Int2),
        3 => Ok(BitWidth::Int3),
        4 => Ok(BitWidth::Int4),
        8 => Ok(BitWidth::Int8),
        _ => Err(PersistError::Corrupt("unknown bit width tag")),
    }
}

fn read_block(r: &mut Reader<'_>) -> Result<ProgressiveBlock, PersistError> {
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    let bits = bits_from_tag(r.u8()?)?;
    if bits == BitWidth::Int8 {
        return Err(PersistError::Corrupt("resident block cannot be INT8"));
    }
    let group = r.u32()? as usize;
    if group == 0 {
        return Err(PersistError::Corrupt("zero group size"));
    }
    let outer_scale = r.f32()?;
    if !(outer_scale.is_finite() && outer_scale > 0.0) {
        return Err(PersistError::Corrupt("invalid outer scale"));
    }
    let n_params = r.u32()? as usize;
    let groups = if rows == 0 { 0 } else { rows.div_ceil(group) };
    if n_params != cols * groups {
        return Err(PersistError::Corrupt("group parameter count mismatch"));
    }
    // Bound the count against the bytes actually present before
    // allocating (a corrupted count must not trigger a huge allocation).
    if n_params > r.remaining() / 2 {
        return Err(PersistError::Truncated);
    }
    let mut params = Vec::with_capacity(n_params);
    for _ in 0..n_params {
        let scale = r.u8()? as i8;
        let zero = r.u8()? as i8;
        if scale <= 0 {
            return Err(PersistError::Corrupt("non-positive group scale"));
        }
        params.push(GroupParams { scale, zero });
    }
    let n_elems = rows
        .checked_mul(cols)
        .ok_or(PersistError::Corrupt("element count overflow"))?;
    let packed_bytes = r.bytes()?;
    if packed_bytes.len() != bits.packed_bytes(n_elems) {
        return Err(PersistError::Corrupt("packed length mismatch"));
    }
    let packed = PackedCodes::from_bytes(packed_bytes, n_elems, bits);
    Ok(ProgressiveBlock::from_parts(
        rows,
        cols,
        bits,
        group,
        packed,
        params,
        outer_scale,
    ))
}

fn read_buffer(r: &mut Reader<'_>, d: usize) -> Result<Int8Buffer, PersistError> {
    let rows = r.u32()? as usize;
    let scale = match r.u8()? {
        0 => None,
        1 => {
            let s = r.f32()?;
            if !(s.is_finite() && s > 0.0) {
                return Err(PersistError::Corrupt("invalid buffer scale"));
            }
            Some(s)
        }
        _ => return Err(PersistError::Corrupt("bad scale presence flag")),
    };
    if rows > 0 && scale.is_none() {
        return Err(PersistError::Corrupt("non-empty buffer without scale"));
    }
    let clamped = r.u64()?;
    let raw = r.bytes()?;
    let expect = rows
        .checked_mul(d)
        .ok_or(PersistError::Corrupt("buffer size overflow"))?;
    if raw.len() != expect {
        return Err(PersistError::Corrupt("buffer code length mismatch"));
    }
    let codes: Vec<i8> = raw.into_iter().map(|b| b as i8).collect();
    Ok(Int8Buffer::from_parts(codes, rows, d, scale, clamped))
}

/// Reads one block and, for checksummed formats, verifies the CRC32
/// stored after it against the bytes just consumed.
fn read_block_checked(
    r: &mut Reader<'_>,
    checksums: bool,
) -> Result<ProgressiveBlock, PersistError> {
    let start = r.pos;
    let block = read_block(r)?;
    if checksums {
        let actual = crc32(&r.buf[start..r.pos]);
        if r.u32()? != actual {
            return Err(PersistError::Corrupt("block checksum mismatch"));
        }
    }
    Ok(block)
}

/// Reads one buffer and, for checksummed formats, verifies its CRC32.
fn read_buffer_checked(
    r: &mut Reader<'_>,
    d: usize,
    checksums: bool,
) -> Result<Int8Buffer, PersistError> {
    let start = r.pos;
    let buf = read_buffer(r, d)?;
    if checksums {
        let actual = crc32(&r.buf[start..r.pos]);
        if r.u32()? != actual {
            return Err(PersistError::Corrupt("buffer checksum mismatch"));
        }
    }
    Ok(buf)
}

/// Parsed fixed-size header of a serialized cache.
struct Header {
    d: usize,
    config: KvCacheConfig,
    n_blocks: usize,
    checksums: bool,
}

fn read_header(r: &mut Reader<'_>) -> Result<Header, PersistError> {
    if r.take(4)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION && version != VERSION_V1 {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let checksums = version >= 2;
    let d = r.u32()? as usize;
    if d == 0 {
        return Err(PersistError::Corrupt("zero head dimension"));
    }
    let bits = bits_from_tag(r.u8()?)?;
    if bits == BitWidth::Int8 {
        return Err(PersistError::Corrupt("resident cache cannot be INT8"));
    }
    let group_size = r.u32()? as usize;
    let buffer_capacity = r.u32()? as usize;
    if group_size == 0 || buffer_capacity == 0 {
        return Err(PersistError::Corrupt("zero config field"));
    }
    let n_blocks = r.u32()? as usize;
    // Each block is at least ~21 bytes; bound before allocating.
    if n_blocks > r.remaining() / 21 {
        return Err(PersistError::Truncated);
    }
    Ok(Header {
        d,
        config: KvCacheConfig {
            bits,
            group_size,
            buffer_capacity,
        },
        n_blocks,
        checksums,
    })
}

/// Reads one interleaved K/V block pair with cross-checks.
fn read_block_pair(
    r: &mut Reader<'_>,
    d: usize,
    checksums: bool,
) -> Result<(ProgressiveBlock, ProgressiveBlock), PersistError> {
    let kb = read_block_checked(r, checksums)?;
    let vb = read_block_checked(r, checksums)?;
    if kb.cols() != d || vb.cols() != d {
        return Err(PersistError::Corrupt("block channel mismatch"));
    }
    if kb.rows() != vb.rows() {
        return Err(PersistError::Corrupt("K/V block row mismatch"));
    }
    Ok((kb, vb))
}

/// Decodes a payload produced by [`serialize_head_cache`] (v2) or
/// [`serialize_head_cache_v1`] (v1).
///
/// # Errors
///
/// Returns a [`PersistError`] describing the first structural violation
/// found — including per-element checksum mismatches for v2 payloads;
/// malformed input never panics.
pub fn deserialize_head_cache(payload: &[u8]) -> Result<HeadKvCache, PersistError> {
    let mut r = Reader::new(payload);
    let h = read_header(&mut r)?;
    let mut k_blocks = Vec::with_capacity(h.n_blocks);
    let mut v_blocks = Vec::with_capacity(h.n_blocks);
    for _ in 0..h.n_blocks {
        let (kb, vb) = read_block_pair(&mut r, h.d, h.checksums)?;
        k_blocks.push(kb);
        v_blocks.push(vb);
    }
    let k_buf = read_buffer_checked(&mut r, h.d, h.checksums)?;
    let v_buf = read_buffer_checked(&mut r, h.d, h.checksums)?;
    if k_buf.len() != v_buf.len() {
        return Err(PersistError::Corrupt("K/V buffer length mismatch"));
    }
    if !r.done() {
        return Err(PersistError::Corrupt("trailing bytes"));
    }
    Ok(HeadKvCache::from_parts(
        h.d, h.config, k_blocks, v_blocks, k_buf, v_buf,
    ))
}

/// Best-effort decode: salvages the longest valid prefix of a damaged
/// payload instead of rejecting it outright.
///
/// Block pairs are consumed until the first corruption (checksum
/// mismatch, structural violation, or truncation); everything before it
/// becomes the recovered cache with empty tail buffers, and the
/// [`RecoveryReport`] says how many tokens survived so the serving layer
/// knows the suffix to re-prefill. Works for v1 payloads too — without
/// checksums, detection relies on the structural validation only.
///
/// Records [`HealthEvent::CorruptBlock`] per dropped block pair and one
/// [`HealthEvent::PartialRecovery`] per salvage in `health` when given.
///
/// # Errors
///
/// Returns a [`PersistError`] only when the *header* itself is
/// unusable — nothing can be salvaged without it.
pub fn recover_head_cache(
    payload: &[u8],
    health: Option<&HealthStats>,
) -> Result<(HeadKvCache, RecoveryReport), PersistError> {
    let mut r = Reader::new(payload);
    let h = read_header(&mut r)?;
    let mut k_blocks = Vec::new();
    let mut v_blocks = Vec::new();
    let mut valid_tokens = 0usize;
    let mut damaged = false;
    for _ in 0..h.n_blocks {
        match read_block_pair(&mut r, h.d, h.checksums) {
            Ok((kb, vb)) => {
                valid_tokens += kb.rows();
                k_blocks.push(kb);
                v_blocks.push(vb);
            }
            Err(_) => {
                damaged = true;
                break;
            }
        }
    }
    let mut k_buf = Int8Buffer::new(h.d);
    let mut v_buf = Int8Buffer::new(h.d);
    if !damaged {
        match (
            read_buffer_checked(&mut r, h.d, h.checksums),
            read_buffer_checked(&mut r, h.d, h.checksums),
        ) {
            (Ok(kb), Ok(vb)) if kb.len() == vb.len() => {
                valid_tokens += kb.len();
                k_buf = kb;
                v_buf = vb;
            }
            _ => damaged = true,
        }
    }
    let dropped_blocks = h.n_blocks - k_blocks.len();
    if let Some(stats) = health {
        if dropped_blocks > 0 {
            stats.record_n(HealthEvent::CorruptBlock, dropped_blocks as u64);
        }
        if damaged {
            stats.record(HealthEvent::PartialRecovery);
        }
    }
    let cache = HeadKvCache::from_parts(h.d, h.config, k_blocks, v_blocks, k_buf, v_buf);
    let report = RecoveryReport {
        valid_tokens,
        dropped_blocks,
        complete: !damaged,
    };
    Ok((cache, report))
}

/// Byte offsets at which a *well-formed* payload sits on a framing
/// boundary: after the header, after each checked block, and after each
/// checked buffer (the final offset is the payload length).
///
/// Property tests enumerate these to corrupt or truncate a payload at
/// every structural seam and assert [`recover_head_cache`] still returns
/// a valid prefix.
///
/// # Errors
///
/// Returns a [`PersistError`] if `payload` is not itself fully valid —
/// boundaries of a damaged payload are not well-defined.
pub fn frame_boundaries(payload: &[u8]) -> Result<Vec<usize>, PersistError> {
    let mut r = Reader::new(payload);
    let h = read_header(&mut r)?;
    let mut out = vec![r.pos];
    for _ in 0..h.n_blocks {
        read_block_checked(&mut r, h.checksums)?;
        out.push(r.pos);
        read_block_checked(&mut r, h.checksums)?;
        out.push(r.pos);
    }
    read_buffer_checked(&mut r, h.d, h.checksums)?;
    out.push(r.pos);
    read_buffer_checked(&mut r, h.d, h.checksums)?;
    out.push(r.pos);
    Ok(out)
}

impl HeadKvCache {
    /// Serializes the cache to a compact binary payload (see the module
    /// docs for the format).
    pub fn to_bytes(&self) -> Vec<u8> {
        serialize_head_cache(self)
    }

    /// Decodes a payload produced by [`HeadKvCache::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`PersistError`] for any malformed payload.
    pub fn from_bytes(payload: &[u8]) -> Result<Self, PersistError> {
        deserialize_head_cache(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::TensorRng;

    fn populated(seed: u64, n: usize) -> HeadKvCache {
        let mut rng = TensorRng::new(seed);
        let data = rng.normal(n, 16, 0.0, 1.0);
        let mut c = HeadKvCache::new(
            16,
            KvCacheConfig {
                bits: BitWidth::Int4,
                group_size: 8,
                buffer_capacity: 16,
            },
        );
        for t in 0..n {
            c.append(data.row(t), data.row(t));
        }
        c
    }

    #[test]
    fn round_trip_preserves_everything() {
        let cache = populated(1, 50); // 3 resident blocks + 2 buffered
        let bytes = cache.to_bytes();
        let back = HeadKvCache::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), cache.len());
        assert_eq!(back.buffer_len(), cache.buffer_len());
        assert_eq!(back.config(), cache.config());
        assert_eq!(back.dequantize_all(), cache.dequantize_all());
        assert_eq!(
            back.key_buffer().clamped_elements(),
            cache.key_buffer().clamped_elements()
        );
    }

    #[test]
    fn round_trip_empty_cache() {
        let cache = HeadKvCache::new(8, KvCacheConfig::default());
        let back = HeadKvCache::from_bytes(&cache.to_bytes()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.head_dim(), 8);
    }

    #[test]
    fn reloaded_cache_continues_decoding() {
        let mut cache = populated(2, 32);
        let bytes = cache.to_bytes();
        let mut back = HeadKvCache::from_bytes(&bytes).unwrap();
        // Appending to both must produce identical states.
        let row = [0.25f32; 16];
        cache.append(&row, &row);
        back.append(&row, &row);
        assert_eq!(back.dequantize_all(), cache.dequantize_all());
    }

    #[test]
    fn payload_is_compact() {
        let cache = populated(3, 256);
        let bytes = cache.to_bytes();
        // Must be well under the FP16 footprint of the same tokens.
        let fp16 = 2 * 2 * 256 * 16;
        assert!(bytes.len() * 2 < fp16, "{} vs {fp16}", bytes.len());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            HeadKvCache::from_bytes(b"NOPE").unwrap_err(),
            PersistError::BadMagic
        );
    }

    #[test]
    fn truncation_rejected_everywhere() {
        // Cutting the payload at every prefix length must yield an error,
        // never a panic or a silently-wrong cache.
        let bytes = populated(4, 20).to_bytes();
        for cut in 0..bytes.len() {
            let err = HeadKvCache::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn bit_flips_are_caught_or_benign() {
        // Structural fields are validated; flipped code bytes decode to a
        // different but well-formed cache. Either way: no panic.
        let bytes = populated(5, 24).to_bytes();
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0xFF;
            let _ = HeadKvCache::from_bytes(&corrupted); // must not panic
        }
    }

    #[test]
    fn version_gate() {
        let mut bytes = populated(6, 8).to_bytes();
        bytes[4] = 99; // version low byte
        assert_eq!(
            HeadKvCache::from_bytes(&bytes).unwrap_err(),
            PersistError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = populated(7, 8).to_bytes();
        bytes.push(0);
        assert_eq!(
            HeadKvCache::from_bytes(&bytes).unwrap_err(),
            PersistError::Corrupt("trailing bytes")
        );
    }

    #[test]
    fn v1_payloads_still_round_trip() {
        let cache = populated(8, 50);
        let v1 = serialize_head_cache_v1(&cache);
        let back = HeadKvCache::from_bytes(&v1).unwrap();
        assert_eq!(back.len(), cache.len());
        assert_eq!(back.dequantize_all(), cache.dequantize_all());
        // v1 is strictly smaller (no checksums), v2 is the default.
        let v2 = cache.to_bytes();
        assert!(v1.len() < v2.len());
        assert_eq!(v2[4], 2, "default format must be v2");
        assert_eq!(v1[4], 1);
    }

    #[test]
    fn v2_checksums_catch_payload_bit_flips() {
        // In v1, flips inside packed code bytes decoded "successfully" to
        // a silently different cache. v2 must reject every single-bit
        // flip anywhere after the header's version field.
        let cache = populated(9, 40);
        let bytes = cache.to_bytes();
        let mut caught = 0usize;
        let mut survived = 0usize;
        for i in 6..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x01;
            match HeadKvCache::from_bytes(&corrupted) {
                Err(_) => caught += 1,
                Ok(back) => {
                    // A flip may only survive if it demonstrably changed
                    // nothing observable (cannot happen for CRC-covered
                    // spans, so this counts silent corruption).
                    if back.dequantize_all() != cache.dequantize_all() {
                        survived += 1;
                    }
                }
            }
        }
        assert_eq!(survived, 0, "{survived} silent corruptions slipped through");
        assert!(caught > 0);
    }

    #[test]
    fn recover_salvages_valid_prefix() {
        use turbo_robust::{HealthEvent, HealthStats};
        let cache = populated(10, 50); // 3 sealed blocks of 16 + 2 buffered
        let mut bytes = cache.to_bytes();
        // Find the second block pair's K block and corrupt deep inside it:
        // flip a byte ~60% into the payload (inside block data, after the
        // first pair). Use a byte known to sit in a packed-code region by
        // corrupting several bytes in the middle.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let health = HealthStats::new();
        let (back, report) = recover_head_cache(&bytes, Some(&health)).unwrap();
        assert!(!report.complete);
        assert!(report.valid_tokens < cache.len());
        assert_eq!(back.len(), report.valid_tokens);
        assert!(report.dropped_blocks > 0);
        assert_eq!(
            health.count(HealthEvent::CorruptBlock),
            report.dropped_blocks as u64
        );
        assert_eq!(health.count(HealthEvent::PartialRecovery), 1);
        // The recovered prefix matches the original's prefix exactly.
        let (k_orig, _) = cache.dequantize_all();
        let (k_back, _) = back.dequantize_all();
        for r in 0..back.len() {
            for c in 0..16 {
                assert_eq!(k_back.get(r, c), k_orig.get(r, c));
            }
        }
    }

    #[test]
    fn recover_on_clean_payload_is_complete() {
        let cache = populated(11, 50);
        let (back, report) = recover_head_cache(&cache.to_bytes(), None).unwrap();
        assert!(report.complete);
        assert_eq!(report.dropped_blocks, 0);
        assert_eq!(report.valid_tokens, cache.len());
        assert_eq!(back.dequantize_all(), cache.dequantize_all());
    }

    #[test]
    fn recover_truncated_payload_keeps_whole_blocks() {
        let cache = populated(12, 50);
        let bytes = cache.to_bytes();
        let truncated = &bytes[..bytes.len() * 2 / 3];
        let (back, report) = recover_head_cache(truncated, None).unwrap();
        assert!(!report.complete);
        assert!(back.len() <= cache.len());
        assert_eq!(back.len() % 16, 0, "only whole sealed blocks survive");
    }

    #[test]
    fn recover_rejects_unusable_header() {
        assert!(recover_head_cache(b"NOPE", None).is_err());
        assert!(recover_head_cache(&[], None).is_err());
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = PersistError::UnsupportedVersion(7);
        assert!(e.to_string().contains("version 7"));
        let boxed: Box<dyn std::error::Error> = Box::new(PersistError::Truncated);
        assert!(boxed.to_string().contains("ended"));
    }
}
