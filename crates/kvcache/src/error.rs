//! Unified error type for fallible cache operations.
//!
//! Every `try_*` API in this crate returns [`CacheError`] instead of
//! panicking, so the serving layer can degrade (drop a sequence, fall
//! back a precision rung, re-prefill a range) rather than abort the
//! process. The panicking wrappers remain for callers that have already
//! validated their inputs; their messages are the `Display` text here.

/// Why a cache operation could not proceed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheError {
    /// The sequence id is not live in the pool (never created, or
    /// already released).
    UnknownSequence(u64),
    /// A sequence references a page slot that no longer holds a page —
    /// internal corruption, e.g. after an external fault.
    DanglingPage(usize),
    /// A K/V row had the wrong number of channels.
    WidthMismatch {
        /// Channels the cache was built for.
        expected: usize,
        /// Channels the caller supplied.
        got: usize,
    },
    /// A K/V row contained NaN or ±Inf.
    NonFinite {
        /// First offending channel index.
        channel: usize,
    },
    /// Quantization could not represent the data (scale overflow).
    ScaleOverflow,
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::UnknownSequence(id) => write!(f, "unknown sequence {id}"),
            CacheError::DanglingPage(slot) => write!(f, "dangling page slot {slot}"),
            CacheError::WidthMismatch { expected, got } => {
                write!(f, "row width mismatch: expected {expected} channels, got {got}")
            }
            CacheError::NonFinite { channel } => {
                write!(f, "non-finite value in KV row at channel {channel}")
            }
            CacheError::ScaleOverflow => write!(f, "quantization scale overflow"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<turbo_quant::QuantError> for CacheError {
    fn from(e: turbo_quant::QuantError) -> Self {
        match e {
            turbo_quant::QuantError::NonFiniteInput => CacheError::NonFinite { channel: 0 },
            turbo_quant::QuantError::ScaleOverflow => CacheError::ScaleOverflow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_panic_messages() {
        // The panicking wrappers format these errors, and existing tests
        // match on these substrings.
        assert!(CacheError::UnknownSequence(3).to_string().contains("unknown sequence"));
        assert!(CacheError::WidthMismatch { expected: 4, got: 2 }
            .to_string()
            .contains("width mismatch"));
        assert!(CacheError::NonFinite { channel: 0 }
            .to_string()
            .contains("non-finite value in KV row"));
        assert!(CacheError::DanglingPage(1).to_string().contains("dangling page"));
    }
}
