//! Property test: the resident-tile dequant cache is invisible to
//! numerics.
//!
//! 256 seeded episodes drive a tile-cached head cache and an uncached
//! (budget-0) twin through identical interleavings of token appends,
//! explicit flushes, progressive middle evictions, and snapshot
//! recoveries, checking after **every** mutation that both answer a
//! decode query bit-for-bit identically. Any staleness bug — a tile
//! surviving a flush, an eviction, or a recovery — shows up as a bitwise
//! divergence.

use turbo_attention::turbo_attend_cache;
use turbo_kvcache::persist::serialize_head_cache;
use turbo_kvcache::{recover_head_cache, HeadKvCache, KvCacheConfig};
use turbo_quant::BitWidth;
use turbo_robust::FaultInjector;
use turbo_softmax::Sas;
use turbo_tensor::TensorRng;

const EPISODES: u64 = 256;
const OPS_PER_EPISODE: usize = 24;

fn episode(seed: u64) {
    let d = [8usize, 16, 32][(seed % 3) as usize];
    let buffer_capacity = [8usize, 16, 24][((seed / 3) % 3) as usize];
    let bits = if seed.is_multiple_of(2) {
        BitWidth::Int4
    } else {
        BitWidth::Int2
    };
    let config = KvCacheConfig {
        bits,
        group_size: 8,
        buffer_capacity,
    };
    let sas = Sas::paper_default();
    let mut rng = TensorRng::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    let mut chooser = FaultInjector::new(seed ^ 0xC0FF_EE00);

    let mut cached = HeadKvCache::new(d, config);
    let mut uncached = HeadKvCache::new(d, config);
    uncached.set_tile_cache_budget(0);

    let row = |rng: &mut TensorRng| -> Vec<f32> {
        (0..d).map(|_| rng.standard_normal()).collect()
    };

    for op in 0..OPS_PER_EPISODE {
        match chooser.pick(10) {
            // Mostly decode appends — the hot path.
            0..=6 => {
                let k = row(&mut rng);
                let v = row(&mut rng);
                cached.append(&k, &v);
                uncached.append(&k, &v);
            }
            7 => {
                let a = cached.try_flush();
                let b = uncached.try_flush();
                assert_eq!(a.is_ok(), b.is_ok(), "seed {seed} op {op}: flush diverged");
            }
            8 => {
                // Progressive compression: evict middle blocks under a
                // budget both caches can honor (sink block + buffer
                // always fit in 2 × capacity).
                let budget = (cached.len() / 2).max(2 * buffer_capacity);
                let a = cached.evict_middle(budget, 1);
                let b = uncached.evict_middle(budget, 1);
                assert_eq!(a, b, "seed {seed} op {op}: eviction count diverged");
            }
            _ => {
                // Snapshot round-trip (the WAL recovery state path):
                // recovered caches start with cold generation-0 tile
                // caches; stale tiles from the previous life must be
                // unreachable.
                let snap_a = serialize_head_cache(&cached);
                let snap_b = serialize_head_cache(&uncached);
                assert_eq!(snap_a, snap_b, "seed {seed} op {op}: snapshots diverged");
                let (back_a, report_a) = recover_head_cache(&snap_a, None).unwrap();
                let (back_b, report_b) = recover_head_cache(&snap_b, None).unwrap();
                assert!(report_a.complete && report_b.complete);
                cached = back_a;
                uncached = back_b;
                uncached.set_tile_cache_budget(0);
            }
        }
        if cached.is_empty() {
            continue;
        }
        let q = row(&mut rng);
        let warm = turbo_attend_cache(&q, &cached, &sas);
        let cold = turbo_attend_cache(&q, &uncached, &sas);
        assert_eq!(
            warm, cold,
            "seed {seed} op {op}: cached decode diverged from uncached"
        );
    }

    // The episode must actually have exercised the tile cache on one
    // side and bypassed it on the other. Two back-to-back attends with
    // no mutation in between guarantee at least one hit even when the
    // last op was a recovery (which resets the tile cache cold).
    if !cached.resident_blocks().is_empty() {
        let q = row(&mut rng);
        turbo_attend_cache(&q, &cached, &sas);
        turbo_attend_cache(&q, &cached, &sas);
        assert!(cached.tile_cache_stats().hits > 0, "seed {seed}: cache never hit");
    }
    assert_eq!(uncached.tile_cache_stats().hits, 0, "seed {seed}: budget-0 twin hit");
}

#[test]
fn cached_decode_is_bit_identical_to_uncached_across_256_episodes() {
    for seed in 0..EPISODES {
        episode(seed);
    }
}
