//! Proof that the decode hot path is allocation-free in steady state.
//!
//! A counting global allocator wraps the system allocator; the tests
//! warm a cache + scratch arena, then pin the exact number of heap
//! allocations performed by a run of decode steps to **zero**. The
//! assertions are active in debug builds (the default `cargo test`
//! profile); release builds still execute the loops as a smoke test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use turbo_attention::{turbo_attend_cache_into, turbo_decode_head_into, Scratch};
use turbo_kvcache::{HeadKvCache, KvCacheConfig};
use turbo_quant::BitWidth;
use turbo_softmax::Sas;
use turbo_tensor::TensorRng;

/// Counts every allocation routed through the global allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

fn populated_cache(seed: u64, n: usize, d: usize, buffer_capacity: usize) -> HeadKvCache {
    let mut rng = TensorRng::new(seed);
    let k = rng.normal(n, d, 0.0, 1.0);
    let v = rng.normal(n, d, 0.0, 1.0);
    let mut cache = HeadKvCache::new(
        d,
        KvCacheConfig {
            bits: BitWidth::Int4,
            group_size: 32,
            buffer_capacity,
        },
    );
    for t in 0..n {
        cache.append(k.row(t), v.row(t));
    }
    cache
}

/// Attend-only loop (read path of Algorithm 2): after one warmup call
/// fills the tile cache and sizes the arena, further queries over an
/// unchanged cache must not touch the allocator at all.
#[test]
fn attend_loop_is_allocation_free_once_warm() {
    let d = 32;
    let cache = populated_cache(11, 200, d, 64);
    let sas = Sas::paper_default();
    let mut rng = TensorRng::new(12);
    let queries: Vec<Vec<f32>> = (0..32)
        .map(|_| (0..d).map(|_| rng.standard_normal()).collect())
        .collect();

    let mut scratch = Scratch::for_cache(&cache);
    let mut out = Vec::with_capacity(d);
    // Warmup: builds the resident dequant tiles and grows every buffer
    // to its working size.
    turbo_attend_cache_into(&queries[0], &cache, &sas, &mut scratch, &mut out);

    let before = allocations();
    for q in &queries {
        turbo_attend_cache_into(q, &cache, &sas, &mut scratch, &mut out);
    }
    let allocated = allocations() - before;
    assert_eq!(out.len(), d);
    #[cfg(debug_assertions)]
    assert_eq!(
        allocated, 0,
        "warm attend loop must not allocate ({allocated} allocations over 32 steps)"
    );
    #[cfg(not(debug_assertions))]
    let _ = allocated;
}

/// Full decode steps (append + attend): between buffer flush boundaries,
/// with reserved buffers and a warm tile cache, a steady-state decode
/// step performs zero heap allocations.
#[test]
fn decode_steps_are_allocation_free_between_flush_boundaries() {
    let d = 32;
    let buffer_capacity = 64;
    // 200 tokens: 3×64 resident blocks + 8 buffered rows, leaving 56
    // appends of headroom before the next flush boundary.
    let mut cache = populated_cache(21, 200, d, buffer_capacity);
    let sas = Sas::paper_default();
    let mut rng = TensorRng::new(22);
    let steps: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = (0..32)
        .map(|_| {
            let row = |rng: &mut TensorRng| (0..d).map(|_| rng.standard_normal()).collect();
            (row(&mut rng), row(&mut rng), row(&mut rng))
        })
        .collect();

    let mut scratch = Scratch::for_cache(&cache);
    let mut out = Vec::with_capacity(d);
    // Warmup attend: fills the tile cache without consuming append
    // headroom.
    turbo_attend_cache_into(&steps[0].0, &cache, &sas, &mut scratch, &mut out);

    let before = allocations();
    for (q, k, v) in &steps {
        turbo_decode_head_into(q, k, v, &mut cache, &sas, &mut scratch, &mut out);
    }
    let allocated = allocations() - before;
    assert_eq!(out.len(), d);
    assert_eq!(cache.len(), 232);
    assert!(
        cache.buffer_len() < buffer_capacity,
        "test must stay between flush boundaries"
    );
    #[cfg(debug_assertions)]
    assert_eq!(
        allocated, 0,
        "steady-state decode must not allocate ({allocated} allocations over 32 steps)"
    );
    #[cfg(not(debug_assertions))]
    let _ = allocated;
}
