//! TurboAttention prefill — Algorithm 1.
//!
//! A FlashAttention-style sweep where every matmul runs on the INT8 path:
//!
//! 1. Each `Q`/`K`/`V` tile is symmetrically quantized to INT8
//!    (`s = max|x|/119`).
//! 2. Scores come from the integer GEMM `Q⁸·(K⁸)ᵀ` scaled by
//!    `s_Q·s_K/√d`.
//! 3. Exponentiation uses SAS instead of FP32 `exp`.
//! 4. The probability tile is itself re-quantized to INT8 and the output
//!    update uses the integer GEMM `P⁸·V⁸` scaled by `s_P·s_V`.
//! 5. As each `K`/`V` tile is first touched, its INT8 codes are
//!    progressively re-quantized (INT4/INT2, channel-wise) and written to
//!    the KV cache for the decode phase.

use crate::reference::Masking;
use turbo_kvcache::HeadKvCache;
use turbo_quant::symmetric::{quantize_slice_sym_into, SymQuantized};
use turbo_runtime::Runtime;
use turbo_softmax::Sas;
use turbo_tensor::{matmul_i8_transposed_b_into, Matrix};

/// Result of a prefill pass over one head.
#[derive(Clone, Debug)]
pub struct PrefillOutput {
    /// Attention output `O`, `n_q × d`.
    pub output: Matrix,
    /// Per-row logsumexp `L = m + ln ℓ` (used by e.g. ring/lean attention
    /// compositions; exposed because Algorithm 1 returns it).
    pub lse: Vec<f32>,
}

/// Runs Algorithm 1 on one head: quantized tiled attention over
/// `(q, k, v)` while populating `cache` with the progressively quantized
/// K/V blocks.
///
/// `block_r`/`block_c` are the `B_r`/`B_c` tile heights. The cache's own
/// config decides the resident bit width and channel-group size.
///
/// # Panics
///
/// Panics if shapes are inconsistent, block sizes are zero, the cache is
/// non-empty, or its head dimension differs from `q.cols()`.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 1's parameter list
pub fn turbo_prefill_head(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    masking: Masking,
    sas: &Sas,
    block_r: usize,
    block_c: usize,
    cache: &mut HeadKvCache,
) -> PrefillOutput {
    prefill_head_impl(q, k, v, masking, sas, block_r, block_c, cache, None)
}

/// Pooled variant of [`turbo_prefill_head`]: the independent query
/// row-block sweeps run as tasks on `rt` instead of a serial loop.
///
/// The K/V quantization pre-pass (which mutates `cache`) stays serial;
/// each row block is then a pure function of the frozen tile set, so the
/// pool executes a *fixed* partition of the work and results merge in
/// row order — bit-identical to [`turbo_prefill_head`] at any worker
/// count. Safe to call from inside another pool task (e.g. head-level
/// parallelism): the runtime's caller-helps scheduling makes nested
/// batches deadlock-free.
///
/// # Panics
///
/// As [`turbo_prefill_head`].
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 1's parameter list
pub fn turbo_prefill_head_pooled(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    masking: Masking,
    sas: &Sas,
    block_r: usize,
    block_c: usize,
    cache: &mut HeadKvCache,
    rt: &Runtime,
) -> PrefillOutput {
    prefill_head_impl(q, k, v, masking, sas, block_r, block_c, cache, Some(rt))
}

/// A stage-1-quantized value tile with its codes stored channel-major
/// (`d × rows`) — the transpose the integer `P⁸·V⁸` GEMM consumes. The
/// transpose is paid once in the pre-pass instead of once per
/// `(q-block, k-tile)` pair.
struct VTile {
    vt: Vec<i8>,
    scale: f32,
    rows: usize,
}

impl VTile {
    fn new(v8: &SymQuantized) -> Self {
        let (rows, d) = (v8.rows(), v8.cols());
        let codes = v8.codes();
        let mut vt = vec![0i8; rows * d];
        for (r, v_row) in codes.chunks_exact(d).enumerate() {
            for (c, &x) in v_row.iter().enumerate() {
                vt[c * rows + r] = x;
            }
        }
        Self {
            vt,
            scale: v8.scale(),
            rows,
        }
    }
}

/// Per-head sweep state frozen after the K/V quantization pre-pass. Each
/// query row block is processed by [`HeadSweep::q_block`], a pure
/// function — the unit of (potential) parallelism.
struct HeadSweep<'a> {
    k_tiles: &'a [(usize, SymQuantized)],
    v_tiles: &'a [VTile],
    masking: Masking,
    sas: &'a Sas,
    offset: usize,
    n_k: usize,
    d: usize,
    scale: f32,
}

impl HeadSweep<'_> {
    /// Online-softmax sweep for the row block starting at absolute query
    /// row `qi`. Returns the normalized `br × d` output rows and their
    /// logsumexp values.
    ///
    /// All intermediates (score tile, probability tile, its INT8
    /// re-quantization, the integer `P·V` accumulator, the correction
    /// row) are allocated once per *row block* and reused across every
    /// K tile of the sweep — the old code reallocated each per tile.
    fn q_block(&self, qi: usize, q_blk: &Matrix) -> (Matrix, Vec<f32>) {
        let (d, n_k, masking, offset) = (self.d, self.n_k, self.masking, self.offset);
        let br = q_blk.rows();
        let q8 = SymQuantized::quantize(q_blk);
        let mut o = Matrix::zeros(br, d);
        let mut m = vec![f32::NEG_INFINITY; br];
        let mut l = vec![0.0f32; br];

        // Per-row-block scratch, reused for every K tile below.
        let mut s_int: Vec<i32> = Vec::new();
        let mut spans = vec![(0usize, 0usize); br];
        let mut p: Vec<f32> = Vec::new();
        let mut p8: Vec<i8> = Vec::new();
        let mut corr = vec![0.0f32; br];
        let mut pv: Vec<i32> = Vec::new();

        let (blk_lo, _) = masking.visible_range(qi + offset, n_k);
        let (_, blk_hi) = masking.visible_range(qi + br - 1 + offset, n_k);
        for (tile_idx, (kj, k8)) in self.k_tiles.iter().enumerate() {
            let kj = *kj;
            let bc = k8.rows();
            if masking.is_causal_like() {
                if kj > blk_hi {
                    break;
                }
                if kj + bc <= blk_lo {
                    continue;
                }
            }
            // Integer score GEMM with the scalar symmetric correction. The
            // i32 tile is *not* dequantized into an f32 buffer: masking is
            // tracked as a per-row visible span `[j0, j1)` and the SAS
            // exponential consumes the raw codes plus `s_scale` directly
            // (masked entries contribute exactly 0.0 either way, so the
            // span form is value-identical to writing −∞ sentinels).
            matmul_i8_transposed_b_into(q8.codes(), k8.codes(), br, d, bc, &mut s_int);
            let s_scale = q8.scale() * k8.scale() * self.scale;
            if masking.is_causal_like() {
                for (i, span) in spans.iter_mut().enumerate() {
                    let (lo, hi) = masking.visible_range(qi + i + offset, n_k);
                    // Intersect [lo, hi] with this tile's keys [kj, kj+bc).
                    let j0 = lo.max(kj) - kj;
                    let j1 = (hi + 1).min(kj + bc).saturating_sub(kj);
                    *span = if j0 < j1 { (j0, j1) } else { (0, 0) };
                }
            } else {
                spans.fill((0, bc));
            }

            online_update_quantized(
                &mut o,
                &mut m,
                &mut l,
                &s_int,
                s_scale,
                &spans,
                bc,
                &self.v_tiles[tile_idx],
                self.sas,
                &mut p,
                &mut p8,
                &mut corr,
                &mut pv,
            );
        }

        let mut blk_out = Matrix::zeros(br, d);
        let mut blk_lse = vec![0.0f32; br];
        for i in 0..br {
            assert!(l[i] > 0.0, "row {} attended to nothing", qi + i);
            let inv = 1.0 / l[i];
            for c in 0..d {
                blk_out.set(i, c, o.get(i, c) * inv);
            }
            blk_lse[i] = m[i] + l[i].ln();
        }
        (blk_out, blk_lse)
    }
}

#[allow(clippy::too_many_arguments)]
fn prefill_head_impl(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    masking: Masking,
    sas: &Sas,
    block_r: usize,
    block_c: usize,
    cache: &mut HeadKvCache,
    rt: Option<&Runtime>,
) -> PrefillOutput {
    assert_eq!(q.cols(), k.cols(), "Q/K width mismatch");
    assert_eq!(k.shape(), v.shape(), "K/V shape mismatch");
    assert!(block_r > 0 && block_c > 0, "block sizes must be positive");
    assert!(cache.is_empty(), "prefill requires an empty cache");
    assert_eq!(cache.head_dim(), q.cols(), "cache head dimension mismatch");
    if masking.is_causal_like() {
        assert!(
            q.rows() <= k.rows(),
            "causal masking assumes queries are the last positions"
        );
    }

    let d = q.cols();
    let n_q = q.rows();
    let n_k = k.rows();
    let scale = 1.0 / (d as f32).sqrt();
    let offset = if masking.is_causal_like() {
        n_k - n_q
    } else {
        0
    };

    // Stage-1 quantize all K/V tiles once; write progressive blocks to the
    // cache as Algorithm 1 does on the first row sweep. This pre-pass
    // mutates the cache, so it stays serial even on the pooled path.
    let mut k_tiles: Vec<(usize, SymQuantized)> = Vec::new();
    let mut v_tiles: Vec<VTile> = Vec::new();
    for (kj, k_blk) in k.row_blocks(block_c) {
        let v_blk = v.row_block(kj, k_blk.rows());
        let k8 = SymQuantized::quantize(&k_blk);
        let v8 = SymQuantized::quantize(&v_blk);
        cache.append_prefill_block(&k_blk, &v_blk);
        k_tiles.push((kj, k8));
        v_tiles.push(VTile::new(&v8));
    }

    let sweep = HeadSweep {
        k_tiles: &k_tiles,
        v_tiles: &v_tiles,
        masking,
        sas,
        offset,
        n_k,
        d,
        scale,
    };

    // The partition into row blocks is fixed by (n_q, block_r) alone, and
    // results merge below in row order — worker count never influences the
    // arithmetic or its ordering.
    let blocks: Vec<(usize, Matrix)> = q.row_blocks(block_r).collect();
    let results: Vec<(usize, Matrix, Vec<f32>)> = match rt {
        Some(rt) => rt.par_map(&blocks, |(qi, q_blk)| {
            let (o, l) = sweep.q_block(*qi, q_blk);
            (*qi, o, l)
        }),
        None => blocks
            .iter()
            .map(|(qi, q_blk)| {
                let (o, l) = sweep.q_block(*qi, q_blk);
                (*qi, o, l)
            })
            .collect(),
    };

    let mut out = Matrix::zeros(n_q, d);
    let mut lse = vec![0.0f32; n_q];
    for (qi, blk_out, blk_lse) in results {
        for i in 0..blk_out.rows() {
            for c in 0..d {
                out.set(qi + i, c, blk_out.get(i, c));
            }
            lse[qi + i] = blk_lse[i];
        }
    }

    PrefillOutput { output: out, lse }
}

/// Shared quantized online-softmax update (steps 3–4 of Algorithm 1 and
/// the body of Algorithm 2), fused on the *integer* score tile: per-row
/// max over the raw `i32` codes, SAS exponentiation straight from codes
/// plus `s_scale` ([`Sas::exp_scaled_row_into`]), INT8 re-quantization of
/// the whole probability tile with a single scale (Algorithm 1:
/// `s_P = max|P̃|/119`), and the integer `P⁸·V⁸` accumulation against the
/// pre-transposed value codes. The f32 score tile never materializes.
///
/// Value-identical to the unfused form (dequantize → mask with −∞ →
/// f32 row max → `exp_row_into`): `i32 → f32` conversion and the
/// positive-scale multiply are weakly monotone, so the converted integer
/// max *is* the f32 row max; masked/out-of-span entries produce exactly
/// `0.0` on both paths, and `+0.0` terms do not perturb the non-negative
/// left-to-right row sum. All buffers are caller-owned scratch; nothing
/// is allocated here.
#[allow(clippy::too_many_arguments)]
fn online_update_quantized(
    o: &mut Matrix,
    m: &mut [f32],
    l: &mut [f32],
    s_int: &[i32],
    s_scale: f32,
    spans: &[(usize, usize)],
    bc: usize,
    v8: &VTile,
    sas: &Sas,
    p: &mut Vec<f32>,
    p8: &mut Vec<i8>,
    corr: &mut [f32],
    pv: &mut Vec<i32>,
) {
    let br = m.len();
    let d = o.cols();
    debug_assert_eq!(s_int.len(), br * bc, "score tile shape mismatch");
    debug_assert_eq!(spans.len(), br, "span row-count mismatch");
    debug_assert_eq!(v8.rows, bc, "V tile height mismatch");
    debug_assert_eq!(v8.vt.len(), bc * d, "V tile width mismatch");

    // Compute the SAS probability tile row-by-row, then one integer GEMM.
    p.clear();
    p.resize(br * bc, 0.0);
    for i in 0..br {
        let (j0, j1) = spans[i];
        let row_codes = &s_int[i * bc + j0..i * bc + j1];
        let row_max = match row_codes.iter().max() {
            Some(&mx) => mx as f32 * s_scale,
            None => f32::NEG_INFINITY, // fully masked row in this tile
        };
        let m_new = m[i].max(row_max);
        if m_new == f32::NEG_INFINITY {
            corr[i] = 1.0; // row untouched by this tile
            continue;
        }
        corr[i] = if m[i] == f32::NEG_INFINITY {
            0.0
        } else {
            sas.exp(m[i] - m_new)
        };
        let row_sum =
            sas.exp_scaled_row_into(row_codes, s_scale, m_new, &mut p[i * bc + j0..i * bc + j1]);
        l[i] = l[i] * corr[i] + row_sum;
        m[i] = m_new;
    }

    // One scale over the whole tile, as the paper's P quantization does.
    let s_p = quantize_slice_sym_into(p, p8);
    matmul_i8_transposed_b_into(p8, &v8.vt, br, bc, d, pv);
    let pv_scale = s_p * v8.scale;
    for i in 0..br {
        let ci = corr[i];
        for c in 0..d {
            let acc = o.get(i, c) * ci + pv[i * d + c] as f32 * pv_scale;
            o.set(i, c, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{flash_attention, naive_attention};
    use turbo_kvcache::KvCacheConfig;
    use turbo_quant::BitWidth;
    use turbo_tensor::{max_abs_error, relative_error, TensorRng};

    fn qkv(seed: u64, n: usize, d: usize) -> (Matrix, Matrix, Matrix) {
        let mut rng = TensorRng::new(seed);
        (
            rng.normal(n, d, 0.0, 1.0),
            rng.normal(n, d, 0.0, 1.0),
            rng.normal(n, d, 0.0, 1.0),
        )
    }

    fn fresh_cache(d: usize) -> HeadKvCache {
        HeadKvCache::new(
            d,
            KvCacheConfig {
                bits: BitWidth::Int4,
                group_size: 64,
                buffer_capacity: 64,
            },
        )
    }

    #[test]
    fn prefill_tracks_exact_attention_full() {
        let (q, k, v) = qkv(51, 96, 32);
        let sas = Sas::paper_default();
        let mut cache = fresh_cache(32);
        let out = turbo_prefill_head(&q, &k, &v, Masking::Full, &sas, 32, 32, &mut cache);
        let exact = naive_attention(&q, &k, &v, Masking::Full);
        let rel = relative_error(&out.output, &exact);
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn prefill_tracks_exact_attention_causal() {
        let (q, k, v) = qkv(52, 80, 16);
        let sas = Sas::paper_default();
        let mut cache = fresh_cache(16);
        let out = turbo_prefill_head(&q, &k, &v, Masking::Causal, &sas, 16, 16, &mut cache);
        let exact = naive_attention(&q, &k, &v, Masking::Causal);
        let rel = relative_error(&out.output, &exact);
        assert!(rel < 0.06, "relative error {rel}");
    }

    #[test]
    fn prefill_populates_cache_blocks() {
        let (q, k, v) = qkv(53, 100, 8);
        let sas = Sas::paper_default();
        let mut cache = fresh_cache(8);
        turbo_prefill_head(&q, &k, &v, Masking::Causal, &sas, 32, 32, &mut cache);
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.resident_blocks().len(), 4); // 32+32+32+4
        assert_eq!(cache.buffer_len(), 0);
        // The cached K is a faithful INT4 reconstruction.
        let (kq, vq) = cache.dequantize_all();
        assert!(relative_error(&kq, &k) < 0.12);
        assert!(relative_error(&vq, &v) < 0.12);
    }

    #[test]
    fn block_size_robustness_matches_table_3() {
        // Output must stay stable across (Br, Bc) combinations.
        let (q, k, v) = qkv(54, 128, 16);
        let sas = Sas::paper_default();
        let mut outs = Vec::new();
        for (br, bc) in [(32, 32), (32, 64), (64, 32), (64, 64), (128, 128)] {
            let mut cache = fresh_cache(16);
            let o = turbo_prefill_head(&q, &k, &v, Masking::Causal, &sas, br, bc, &mut cache);
            outs.push(o.output);
        }
        for o in &outs[1..] {
            assert!(
                relative_error(o, &outs[0]) < 0.03,
                "block-size sensitivity too high"
            );
        }
    }

    #[test]
    fn lse_close_to_exact_flash_lse() {
        let (q, k, v) = qkv(55, 64, 16);
        let sas = Sas::paper_default();
        let mut cache = fresh_cache(16);
        let out = turbo_prefill_head(&q, &k, &v, Masking::Full, &sas, 32, 32, &mut cache);
        let (_, lse) =
            crate::reference::flash_attention_with_lse(&q, &k, &v, Masking::Full, 32, 32);
        for (a, b) in out.lse.iter().zip(&lse) {
            assert!((a - b).abs() < 0.1, "lse {a} vs {b}");
        }
    }

    #[test]
    fn quantized_error_exceeds_f16_flash_but_stays_small() {
        // Sanity on the approximation ladder: exact < fp16-flash < turbo.
        let (q, k, v) = qkv(56, 64, 32);
        let exact = naive_attention(&q, &k, &v, Masking::Full);
        let f16 = flash_attention(&q, &k, &v, Masking::Full, 32, 32);
        let sas = Sas::paper_default();
        let mut cache = fresh_cache(32);
        let turbo = turbo_prefill_head(&q, &k, &v, Masking::Full, &sas, 32, 32, &mut cache).output;
        let e_f16 = max_abs_error(&exact, &f16);
        let e_turbo = max_abs_error(&exact, &turbo);
        assert!(e_f16 <= e_turbo, "f16 {e_f16} vs turbo {e_turbo}");
        assert!(e_turbo < 0.25, "turbo error {e_turbo} too large");
    }

    #[test]
    fn ragged_tail_blocks_are_handled() {
        let (q, k, v) = qkv(57, 70, 8); // 70 = 2*32 + 6
        let sas = Sas::paper_default();
        let mut cache = fresh_cache(8);
        let out = turbo_prefill_head(&q, &k, &v, Masking::Causal, &sas, 32, 32, &mut cache);
        assert_eq!(out.output.shape(), (70, 8));
        let exact = naive_attention(&q, &k, &v, Masking::Causal);
        assert!(relative_error(&out.output, &exact) < 0.06);
    }

    #[test]
    #[should_panic(expected = "empty cache")]
    fn non_empty_cache_rejected() {
        let (q, k, v) = qkv(58, 8, 4);
        let sas = Sas::paper_default();
        let mut cache = fresh_cache(4);
        cache.append(&[0.0; 4], &[0.0; 4]);
        turbo_prefill_head(&q, &k, &v, Masking::Full, &sas, 4, 4, &mut cache);
    }
}

#[cfg(test)]
mod sliding_window_tests {
    use super::*;
    use crate::reference::naive_attention;
    use turbo_kvcache::KvCacheConfig;
    use turbo_quant::BitWidth;
    use turbo_tensor::{relative_error, TensorRng};

    #[test]
    fn turbo_prefill_respects_sliding_window() {
        let mut rng = TensorRng::new(91);
        let (n, d) = (96usize, 16usize);
        let q = rng.normal(n, d, 0.0, 1.0);
        let k = rng.normal(n, d, 0.0, 1.0);
        let v = rng.normal(n, d, 0.0, 1.0);
        let sas = Sas::paper_default();
        for w in [8usize, 32] {
            let mut cache = HeadKvCache::new(
                d,
                KvCacheConfig {
                    bits: BitWidth::Int4,
                    group_size: 32,
                    buffer_capacity: 32,
                },
            );
            let out = turbo_prefill_head(
                &q,
                &k,
                &v,
                Masking::SlidingWindow(w),
                &sas,
                16,
                16,
                &mut cache,
            );
            let exact = naive_attention(&q, &k, &v, Masking::SlidingWindow(w));
            let rel = relative_error(&out.output, &exact);
            assert!(rel < 0.08, "window {w}: rel {rel}");
        }
    }
}
