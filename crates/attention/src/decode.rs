//! TurboAttention decode — Algorithm 2.
//!
//! One new token's query attends to the quantized KV cache:
//!
//! 1. The new `k`/`v` vectors enter the INT8 buffer (universal scale,
//!    flushing to INT4/2 every `n_b` steps).
//! 2. `q` is symmetrically quantized to INT8.
//! 3. Each resident block's INT8 expansion comes from the head's
//!    [`DequantTile`] cache — the pure-integer INT4/2 → INT8
//!    dequantization runs once per block per generation instead of once
//!    per decode step — and scores come from the fused INT8 dot kernel.
//! 4. SAS replaces FP32 exponentiation (evaluated over the whole score
//!    tile with threshold-skip short-circuiting); the probability row is
//!    INT8 re-quantized for the `P⁸·V⁸` product, exactly as in prefill.
//!
//! The hot path is **zero-allocation** in steady state: all intermediate
//! buffers live in a caller-owned [`Scratch`] arena (the convenience
//! entry points keep one per thread), value tiles arrive pre-transposed
//! from the cache, and the only per-step allocation on the convenience
//! path is the returned output vector itself. Every kernel here is
//! bit-identical to the original unfused implementation: integer
//! accumulation is associative, the scale epilogues multiply the same
//! finished sums, and SAS short-circuiting zeroes exactly the entries
//! `Sas::exp` would.

use std::cell::RefCell;

use crate::scratch::Scratch;
use turbo_kvcache::{DequantTile, HeadKvCache};
use turbo_quant::symmetric::quantize_slice_sym_into;
use turbo_runtime::Runtime;
use turbo_softmax::Sas;
use turbo_tensor::matmul_i8_transposed_b_into;

/// Decodes one token for one head: appends `(k_new, v_new)` to the cache,
/// then computes the attention output of `q_new` over the whole cache.
///
/// Returns the `d`-dimensional attention output row.
///
/// # Panics
///
/// Panics if vector lengths don't match the cache's head dimension.
pub fn turbo_decode_head(
    q_new: &[f32],
    k_new: &[f32],
    v_new: &[f32],
    cache: &mut HeadKvCache,
    sas: &Sas,
) -> Vec<f32> {
    let d = cache.head_dim();
    assert_eq!(q_new.len(), d, "query width mismatch");
    assert_eq!(k_new.len(), d, "key width mismatch");
    assert_eq!(v_new.len(), d, "value width mismatch");

    cache.append(k_new, v_new);
    turbo_attend_cache(q_new, cache, sas)
}

/// Allocation-free sibling of [`turbo_decode_head`]: intermediates live
/// in `scratch` and the output row is written into `out` (cleared and
/// refilled, keeping its capacity). In steady state — between buffer
/// flush boundaries, with the tile cache warm — a step performs zero
/// heap allocations.
///
/// # Panics
///
/// As [`turbo_decode_head`].
pub fn turbo_decode_head_into(
    q_new: &[f32],
    k_new: &[f32],
    v_new: &[f32],
    cache: &mut HeadKvCache,
    sas: &Sas,
    scratch: &mut Scratch,
    out: &mut Vec<f32>,
) {
    let d = cache.head_dim();
    assert_eq!(q_new.len(), d, "query width mismatch");
    assert_eq!(k_new.len(), d, "key width mismatch");
    assert_eq!(v_new.len(), d, "value width mismatch");

    cache.append(k_new, v_new);
    turbo_attend_cache_into(q_new, cache, sas, scratch, out);
}

/// Minimum cached tokens for split-K decode to beat the fused single-pass
/// kernel. Below this, per-partition task dispatch and the partial-merge
/// epilogue dominate: at 256 tokens split-K measures ~2.5× *slower* than
/// [`turbo_attend_cache_into`] (5.68 µs vs 2.25 µs — see the
/// `attention/decode_splitk_crossover` bench rows, which pin both sides
/// of this threshold). Only past a few thousand resident tokens does the
/// per-block work grow large enough to amortize the scheduling overhead.
pub const SPLITK_MIN_TOKENS: usize = 2048;

/// The split-K routing policy: split-K wins only when there are at least
/// two workers to spread partitions over **and** the cache holds enough
/// tokens ([`SPLITK_MIN_TOKENS`]) for per-partition work to dwarf task
/// dispatch. Pure so the threshold is unit-testable without a pool.
pub fn splitk_wins(cached_tokens: usize, workers: usize) -> bool {
    workers >= 2 && cached_tokens >= SPLITK_MIN_TOKENS
}

/// One routed decode step: appends `(k_new, v_new)` and attends `q_new`
/// over the cache, choosing between the fused single-pass kernel
/// ([`turbo_attend_cache`]) and split-K
/// ([`crate::splitk::turbo_attend_cache_splitk_on`]) via [`splitk_wins`].
///
/// The two kernels agree only approximately (split-K groups SAS rescale
/// factors per partition), so routing trades a bounded numeric difference
/// for throughput — the same trade `turbo_attend_cache_splitk` already
/// documents.
pub fn turbo_decode_step(
    q_new: &[f32],
    k_new: &[f32],
    v_new: &[f32],
    cache: &mut HeadKvCache,
    sas: &Sas,
) -> Vec<f32> {
    turbo_decode_step_on(turbo_runtime::global(), q_new, k_new, v_new, cache, sas)
}

/// As [`turbo_decode_step`], on an explicit runtime (whose worker count
/// feeds the routing decision).
///
/// # Panics
///
/// Panics if vector lengths don't match the cache's head dimension.
pub fn turbo_decode_step_on(
    rt: &Runtime,
    q_new: &[f32],
    k_new: &[f32],
    v_new: &[f32],
    cache: &mut HeadKvCache,
    sas: &Sas,
) -> Vec<f32> {
    let d = cache.head_dim();
    assert_eq!(q_new.len(), d, "query width mismatch");
    assert_eq!(k_new.len(), d, "key width mismatch");
    assert_eq!(v_new.len(), d, "value width mismatch");

    cache.append(k_new, v_new);
    if splitk_wins(cache.len(), rt.workers()) {
        crate::splitk::turbo_attend_cache_splitk_on(rt, q_new, cache, sas)
    } else {
        turbo_attend_cache(q_new, cache, sas)
    }
}

/// Attends a single query over an existing quantized cache *without*
/// appending anything — the read-only half of Algorithm 2. Useful when the
/// same cache serves several queries (e.g. multi-hop retrieval probes).
///
/// Uses a thread-local [`Scratch`] arena, so repeated calls only allocate
/// the returned vector. For a strictly allocation-free loop use
/// [`turbo_attend_cache_into`].
///
/// # Panics
///
/// Panics if `q.len()` differs from the cache head dimension or the cache
/// is empty.
pub fn turbo_attend_cache(q: &[f32], cache: &HeadKvCache, sas: &Sas) -> Vec<f32> {
    thread_local! {
        static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
    }
    SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let mut out = Vec::new();
        turbo_attend_cache_into(q, cache, sas, &mut scratch, &mut out);
        out
    })
}

/// As [`turbo_attend_cache`], with caller-owned buffers: all
/// intermediates live in `scratch` and the output is written into `out`.
/// Zero heap allocations once `scratch`/`out` have warmed to the cache's
/// shape and the tile cache holds the resident blocks.
///
/// # Panics
///
/// As [`turbo_attend_cache`].
pub fn turbo_attend_cache_into(
    q: &[f32],
    cache: &HeadKvCache,
    sas: &Sas,
    scratch: &mut Scratch,
    out: &mut Vec<f32>,
) {
    let d = cache.head_dim();
    assert_eq!(q.len(), d, "query width mismatch");
    assert!(!cache.is_empty(), "cannot attend to an empty cache");

    let scale = 1.0 / (d as f32).sqrt();
    let Scratch {
        q8,
        si,
        p,
        p8,
        pv,
        vt,
        o,
    } = scratch;
    let s_q = quantize_slice_sym_into(q, q8);

    o.clear();
    o.resize(d, 0.0);
    let mut m = f32::NEG_INFINITY;
    let mut l = 0.0f32;

    // Resident progressive blocks: memoized integer dequantization.
    let n_blocks = cache.resident_blocks().len();
    for b in 0..n_blocks {
        let tile: std::sync::Arc<DequantTile> = cache.resident_tile(b);
        attend_tile(
            q8,
            s_q,
            scale,
            tile.k_codes(),
            tile.k_scale(),
            tile.vt_codes(),
            tile.v_scale(),
            tile.rows(),
            d,
            sas,
            si,
            p,
            p8,
            pv,
            o,
            &mut m,
            &mut l,
        );
    }

    // Open INT8 buffer: codes are used in place (no snapshot clone); only
    // the value transpose is materialized, into the reusable arena.
    if cache.buffer_len() > 0 {
        let kb = cache.key_buffer();
        let vb = cache.value_buffer();
        let rows = kb.len();
        let v_codes = vb.codes();
        vt.clear();
        vt.resize(rows * d, 0);
        for (r, v_row) in v_codes.chunks_exact(d).enumerate() {
            for (c, &x) in v_row.iter().enumerate() {
                vt[c * rows + r] = x;
            }
        }
        attend_tile(
            q8,
            s_q,
            scale,
            kb.codes(),
            kb.scale().expect("non-empty buffer has a scale"),
            vt,
            vb.scale().expect("non-empty buffer has a scale"),
            rows,
            d,
            sas,
            si,
            p,
            p8,
            pv,
            o,
            &mut m,
            &mut l,
        );
    }

    assert!(l > 0.0, "decode token attended to nothing");
    let inv = 1.0 / l;
    out.clear();
    out.extend(o.iter().map(|&x| x * inv));
}

/// Fused single-row attention over one INT8 K/V tile, folded into the
/// online-softmax state `(o, m, l)`.
///
/// Bit-identical to the original `matmul → Matrix → online_update` chain:
/// * scores stay in raw `i32` through the SIMD-dispatched
///   `q⁸ · (K⁸)ᵀ` GEMM (associative integer accumulation), and the row
///   max is taken over the integer sums — `i32 → f32` conversion and the
///   positive `s_q·s_k/√d` scale are weakly monotone, so the scaled
///   integer max *is* the f32 row max the old code folded;
/// * SAS consumes the codes plus scale directly via
///   `exp_scaled_row_into`, which evaluates the exact
///   `code as f32 * s_scale - m_new` expression per element (vectorized
///   when the evaluator qualifies), zeroing exactly the entries
///   `Sas::exp` zeroes;
/// * the probability row is re-quantized with the same `max|p|/119` fold
///   and the integer `P⁸·V⁸` product consumes the pre-transposed value
///   codes the old code rebuilt per call.
#[allow(clippy::too_many_arguments)]
fn attend_tile(
    q8: &[i8],
    s_q: f32,
    scale: f32,
    k_codes: &[i8],
    k_scale: f32,
    vt_codes: &[i8],
    v_scale: f32,
    rows: usize,
    d: usize,
    sas: &Sas,
    si: &mut Vec<i32>,
    p: &mut Vec<f32>,
    p8: &mut Vec<i8>,
    pv: &mut Vec<i32>,
    o: &mut [f32],
    m: &mut f32,
    l: &mut f32,
) {
    debug_assert_eq!(k_codes.len(), rows * d, "K tile shape mismatch");
    debug_assert_eq!(vt_codes.len(), rows * d, "V tile shape mismatch");

    // Fused integer score kernel: one 1 × rows GEMM against the key
    // tile; the scores never leave i32 until SAS consumes them.
    let s_scale = s_q * k_scale * scale;
    matmul_i8_transposed_b_into(q8, k_codes, 1, d, rows, si);

    let row_max = match si.iter().max() {
        Some(&mx) => mx as f32 * s_scale,
        None => f32::NEG_INFINITY,
    };
    let m_new = m.max(row_max);
    if m_new == f32::NEG_INFINITY {
        // Tile contributed nothing (cannot happen with finite scores);
        // the original code also left (o, l) unchanged here.
        return;
    }
    let corr = if *m == f32::NEG_INFINITY {
        0.0
    } else {
        sas.exp(*m - m_new)
    };

    p.clear();
    p.resize(rows, 0.0);
    let row_sum = sas.exp_scaled_row_into(si, s_scale, m_new, p);
    *l = *l * corr + row_sum;
    *m = m_new;

    // Quantize the probability row (Algorithm 1: s_P = max|P̃|/119) and
    // run the integer P·V product against the pre-transposed values.
    let s_p = quantize_slice_sym_into(p, p8);
    matmul_i8_transposed_b_into(p8, vt_codes, 1, rows, d, pv);
    let pv_scale = s_p * v_scale;
    for (oc, &x) in o.iter_mut().zip(pv.iter()) {
        *oc = *oc * corr + x as f32 * pv_scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{naive_attention, Masking};
    use turbo_kvcache::KvCacheConfig;
    use turbo_quant::BitWidth;
    use turbo_tensor::TensorRng;

    fn cache(d: usize, bits: BitWidth, nb: usize) -> HeadKvCache {
        HeadKvCache::new(
            d,
            KvCacheConfig {
                bits,
                group_size: 64,
                buffer_capacity: nb,
            },
        )
    }

    /// Decodes a whole sequence token-by-token and compares against exact
    /// causal attention computed densely at each step.
    fn decode_error(seed: u64, n: usize, d: usize, bits: BitWidth, nb: usize) -> f32 {
        let mut rng = TensorRng::new(seed);
        let q = rng.normal(n, d, 0.0, 1.0);
        let k = rng.normal(n, d, 0.0, 1.0);
        let v = rng.normal(n, d, 0.0, 1.0);
        let sas = Sas::paper_default();
        let mut c = cache(d, bits, nb);
        let mut worst = 0.0f32;
        for t in 0..n {
            let out = turbo_decode_head(q.row(t), k.row(t), v.row(t), &mut c, &sas);
            // Exact: q_t against keys 0..=t.
            let qt = q.row_block(t, 1);
            let kt = k.row_block(0, t + 1);
            let vt = v.row_block(0, t + 1);
            let exact = naive_attention(&qt, &kt, &vt, Masking::Causal);
            for (a, b) in out.iter().zip(exact.row(0)) {
                worst = worst.max((a - b).abs());
            }
        }
        worst
    }

    #[test]
    fn single_token_attends_to_itself_exactly() {
        let sas = Sas::paper_default();
        let mut c = cache(4, BitWidth::Int4, 8);
        let k = [0.5f32, -0.25, 1.0, 0.0];
        let v = [1.0f32, 2.0, -3.0, 0.5];
        let out = turbo_decode_head(&[0.1, 0.2, 0.3, 0.4], &k, &v, &mut c, &sas);
        // Softmax over one entry is 1 regardless of approximation.
        for (a, b) in out.iter().zip(&v) {
            assert!((a - b).abs() < 0.03, "{a} vs {b}");
        }
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn decode_tracks_exact_attention_int4() {
        let err = decode_error(61, 96, 16, BitWidth::Int4, 32);
        assert!(err < 0.2, "int4 decode error {err}");
    }

    #[test]
    fn decode_int2_is_coarser_than_int4() {
        let e4 = decode_error(62, 64, 16, BitWidth::Int4, 16);
        let e2 = decode_error(62, 64, 16, BitWidth::Int2, 16);
        assert!(e4 < e2, "int4 {e4} must beat int2 {e2}");
    }

    #[test]
    fn decode_spans_resident_and_buffered_tokens() {
        // With nb=8 and 20 tokens: 2 flushed blocks + 4 buffered.
        let mut rng = TensorRng::new(63);
        let sas = Sas::paper_default();
        let mut c = cache(8, BitWidth::Int4, 8);
        let data = rng.normal(20, 8, 0.0, 1.0);
        let mut last = Vec::new();
        for t in 0..20 {
            last = turbo_decode_head(data.row(t), data.row(t), data.row(t), &mut c, &sas);
        }
        assert_eq!(c.resident_blocks().len(), 2);
        assert_eq!(c.buffer_len(), 4);
        // Exact reference over all 20 tokens.
        let qt = data.row_block(19, 1);
        let exact = naive_attention(&qt, &data, &data, Masking::Causal);
        for (a, b) in last.iter().zip(exact.row(0)) {
            assert!((a - b).abs() < 0.2, "{a} vs {b}");
        }
    }

    #[test]
    fn prefill_then_decode_composes() {
        let mut rng = TensorRng::new(64);
        let d = 16;
        let n0 = 64;
        let q0 = rng.normal(n0, d, 0.0, 1.0);
        let k0 = rng.normal(n0, d, 0.0, 1.0);
        let v0 = rng.normal(n0, d, 0.0, 1.0);
        let sas = Sas::paper_default();
        let mut c = cache(d, BitWidth::Int4, 16);
        crate::prefill::turbo_prefill_head(&q0, &k0, &v0, Masking::Causal, &sas, 32, 32, &mut c);
        // Decode 5 more tokens.
        let mut out = Vec::new();
        let mut ks = k0.clone();
        let mut vs = v0.clone();
        for t in 0..5 {
            let qt = rng.normal(1, d, 0.0, 1.0);
            let kt = rng.normal(1, d, 0.0, 1.0);
            let vt = rng.normal(1, d, 0.0, 1.0);
            ks.append_rows(&kt);
            vs.append_rows(&vt);
            out = turbo_decode_head(qt.row(0), kt.row(0), vt.row(0), &mut c, &sas);
            assert_eq!(c.len(), n0 + t + 1);
            let exact = naive_attention(&qt, &ks, &vs, Masking::Causal);
            for (a, b) in out.iter().zip(exact.row(0)) {
                assert!((a - b).abs() < 0.25, "step {t}: {a} vs {b}");
            }
        }
        assert_eq!(out.len(), d);
    }

    #[test]
    fn buffer_flush_mid_decode_preserves_accuracy() {
        // Cross the n_b boundary and verify no jump in error.
        let e = decode_error(65, 17, 8, BitWidth::Int4, 16); // flush at t=15
        assert!(e < 0.2, "error across flush {e}");
    }

    #[test]
    fn into_variant_matches_convenience_path_bitwise() {
        let mut rng = TensorRng::new(66);
        let d = 16;
        let data = rng.normal(50, d, 0.0, 1.0);
        let sas = Sas::paper_default();
        let mut c = cache(d, BitWidth::Int4, 16);
        let mut c2 = c.clone();
        let mut scratch = Scratch::for_cache(&c);
        let mut out = Vec::new();
        for t in 0..50 {
            let a = turbo_decode_head(data.row(t), data.row(t), data.row(t), &mut c, &sas);
            turbo_decode_head_into(
                data.row(t),
                data.row(t),
                data.row(t),
                &mut c2,
                &sas,
                &mut scratch,
                &mut out,
            );
            assert_eq!(a, out, "step {t} diverged");
        }
    }

    #[test]
    fn warm_tile_cache_is_bit_identical_to_cold() {
        let mut rng = TensorRng::new(67);
        let d = 8;
        let data = rng.normal(40, d, 0.0, 1.0);
        let sas = Sas::paper_default();
        let warm = cache(d, BitWidth::Int4, 8);
        let cold = warm.clone();
        cold.set_tile_cache_budget(0); // every lookup misses: fresh dequant
        let mut warm = warm;
        let mut cold = cold;
        for t in 0..40 {
            let a = turbo_decode_head(data.row(t), data.row(t), data.row(t), &mut warm, &sas);
            let b = turbo_decode_head(data.row(t), data.row(t), data.row(t), &mut cold, &sas);
            assert_eq!(a, b, "step {t}: cached vs uncached diverged");
        }
        let s = warm.tile_cache_stats();
        assert!(s.hits > 0, "warm cache never hit");
        assert_eq!(cold.tile_cache_stats().hits, 0);
    }

    #[test]
    #[should_panic(expected = "query width mismatch")]
    fn wrong_query_width_panics() {
        let sas = Sas::paper_default();
        let mut c = cache(4, BitWidth::Int4, 8);
        turbo_decode_head(&[0.0; 3], &[0.0; 4], &[0.0; 4], &mut c, &sas);
    }

    #[test]
    fn splitk_routing_policy() {
        // Worker gate: one worker never routes to split-K.
        assert!(!splitk_wins(usize::MAX, 1));
        // Length gate: short caches stay on the fused kernel. 256 tokens
        // is the measured ~2.5× regression case the threshold exists for.
        assert!(!splitk_wins(256, 8));
        assert!(!splitk_wins(SPLITK_MIN_TOKENS - 1, 8));
        assert!(splitk_wins(SPLITK_MIN_TOKENS, 2));
        assert!(splitk_wins(1 << 20, 2));
    }

    #[test]
    fn routed_step_below_threshold_is_bitwise_the_fused_path() {
        let mut rng = TensorRng::new(68);
        let d = 16;
        let data = rng.normal(60, d, 0.0, 1.0);
        let sas = Sas::paper_default();
        let rt = turbo_runtime::Runtime::with_workers(8);
        let mut routed = cache(d, BitWidth::Int4, 16);
        let mut fused = routed.clone();
        for t in 0..60 {
            let a = turbo_decode_step_on(
                &rt,
                data.row(t),
                data.row(t),
                data.row(t),
                &mut routed,
                &sas,
            );
            let b = turbo_decode_head(data.row(t), data.row(t), data.row(t), &mut fused, &sas);
            assert_eq!(a, b, "step {t}: short-cache routing left the fused path");
        }
    }

    #[test]
    fn routed_step_above_threshold_is_bitwise_the_splitk_path() {
        let mut rng = TensorRng::new(69);
        let d = 8;
        let sas = Sas::paper_default();
        let rt = turbo_runtime::Runtime::with_workers(2);
        let mut c = cache(d, BitWidth::Int4, 64);
        let fill = rng.normal(SPLITK_MIN_TOKENS - 1, d, 0.0, 1.0);
        for t in 0..fill.rows() {
            c.append(fill.row(t), fill.row(t));
        }
        let step = rng.normal(1, d, 0.0, 1.0);
        let mut twin = c.clone();
        let routed = turbo_decode_step_on(
            &rt,
            step.row(0),
            step.row(0),
            step.row(0),
            &mut c,
            &sas,
        );
        twin.append(step.row(0), step.row(0));
        let splitk =
            crate::splitk::turbo_attend_cache_splitk_on(&rt, step.row(0), &twin, &sas);
        assert_eq!(routed, splitk, "long-cache routing must take split-K");
        assert_eq!(c.len(), SPLITK_MIN_TOKENS);
    }
}
