//! TurboAttention decode — Algorithm 2.
//!
//! One new token's query attends to the quantized KV cache:
//!
//! 1. The new `k`/`v` vectors enter the INT8 buffer (universal scale,
//!    flushing to INT4/2 every `n_b` steps).
//! 2. `q` is symmetrically quantized to INT8.
//! 3. Each resident block is dequantized *in integer arithmetic*
//!    (INT4/2 → INT8, `q̂¹ = (q² + z)·s`) — never to floating point — and
//!    scores come from the INT8 GEMM.
//! 4. SAS replaces FP32 exponentiation; the probability row is INT8
//!    re-quantized for the `P⁸·V⁸` product, exactly as in prefill.

use crate::prefill::online_update_quantized;
use turbo_kvcache::HeadKvCache;
use turbo_quant::symmetric::{quantize_slice_sym, SymQuantized};
use turbo_softmax::Sas;
use turbo_tensor::{matmul_i8_transposed_b, Matrix};

/// Decodes one token for one head: appends `(k_new, v_new)` to the cache,
/// then computes the attention output of `q_new` over the whole cache.
///
/// Returns the `d`-dimensional attention output row.
///
/// # Panics
///
/// Panics if vector lengths don't match the cache's head dimension.
pub fn turbo_decode_head(
    q_new: &[f32],
    k_new: &[f32],
    v_new: &[f32],
    cache: &mut HeadKvCache,
    sas: &Sas,
) -> Vec<f32> {
    let d = cache.head_dim();
    assert_eq!(q_new.len(), d, "query width mismatch");
    assert_eq!(k_new.len(), d, "key width mismatch");
    assert_eq!(v_new.len(), d, "value width mismatch");

    cache.append(k_new, v_new);
    turbo_attend_cache(q_new, cache, sas)
}

/// Attends a single query over an existing quantized cache *without*
/// appending anything — the read-only half of Algorithm 2. Useful when the
/// same cache serves several queries (e.g. multi-hop retrieval probes).
///
/// # Panics
///
/// Panics if `q.len()` differs from the cache head dimension or the cache
/// is empty.
pub fn turbo_attend_cache(q: &[f32], cache: &HeadKvCache, sas: &Sas) -> Vec<f32> {
    let d = cache.head_dim();
    assert_eq!(q.len(), d, "query width mismatch");
    assert!(!cache.is_empty(), "cannot attend to an empty cache");

    let scale = 1.0 / (d as f32).sqrt();
    let (q8, s_q) = quantize_slice_sym(q);

    let mut o = Matrix::zeros(1, d);
    let mut m = vec![f32::NEG_INFINITY; 1];
    let mut l = vec![0.0f32; 1];

    // Resident progressive blocks: integer dequantization to INT8.
    let n_blocks = cache.resident_blocks().len();
    for b in 0..n_blocks {
        let k8 = cache.resident_blocks()[b].dequantize_to_int8();
        let v8 = cache.resident_value_blocks()[b].dequantize_to_int8();
        attend_block(&q8, s_q, scale, &k8, &v8, &mut o, &mut m, &mut l, sas);
    }

    // Open INT8 buffer.
    if cache.buffer_len() > 0 {
        let k8 = cache.key_buffer().as_sym_quantized();
        let v8 = cache.value_buffer().as_sym_quantized();
        attend_block(&q8, s_q, scale, &k8, &v8, &mut o, &mut m, &mut l, sas);
    }

    assert!(l[0] > 0.0, "decode token attended to nothing");
    let inv = 1.0 / l[0];
    (0..d).map(|c| o.get(0, c) * inv).collect()
}

/// Scores the single query row against one INT8 K/V block and folds it
/// into the online-softmax state.
#[allow(clippy::too_many_arguments)]
fn attend_block(
    q8: &[i8],
    s_q: f32,
    scale: f32,
    k8: &SymQuantized,
    v8: &SymQuantized,
    o: &mut Matrix,
    m: &mut [f32],
    l: &mut [f32],
    sas: &Sas,
) {
    let d = q8.len();
    let bc = k8.rows();
    let s_int = matmul_i8_transposed_b(q8, k8.codes(), 1, d, bc);
    let s_scale = s_q * k8.scale() * scale;
    let s = Matrix::from_vec(1, bc, s_int.iter().map(|&x| x as f32 * s_scale).collect());
    online_update_quantized(o, m, l, &s, v8, sas);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{naive_attention, Masking};
    use turbo_kvcache::KvCacheConfig;
    use turbo_quant::BitWidth;
    use turbo_tensor::TensorRng;

    fn cache(d: usize, bits: BitWidth, nb: usize) -> HeadKvCache {
        HeadKvCache::new(
            d,
            KvCacheConfig {
                bits,
                group_size: 64,
                buffer_capacity: nb,
            },
        )
    }

    /// Decodes a whole sequence token-by-token and compares against exact
    /// causal attention computed densely at each step.
    fn decode_error(seed: u64, n: usize, d: usize, bits: BitWidth, nb: usize) -> f32 {
        let mut rng = TensorRng::new(seed);
        let q = rng.normal(n, d, 0.0, 1.0);
        let k = rng.normal(n, d, 0.0, 1.0);
        let v = rng.normal(n, d, 0.0, 1.0);
        let sas = Sas::paper_default();
        let mut c = cache(d, bits, nb);
        let mut worst = 0.0f32;
        for t in 0..n {
            let out = turbo_decode_head(q.row(t), k.row(t), v.row(t), &mut c, &sas);
            // Exact: q_t against keys 0..=t.
            let qt = q.row_block(t, 1);
            let kt = k.row_block(0, t + 1);
            let vt = v.row_block(0, t + 1);
            let exact = naive_attention(&qt, &kt, &vt, Masking::Causal);
            for (a, b) in out.iter().zip(exact.row(0)) {
                worst = worst.max((a - b).abs());
            }
        }
        worst
    }

    #[test]
    fn single_token_attends_to_itself_exactly() {
        let sas = Sas::paper_default();
        let mut c = cache(4, BitWidth::Int4, 8);
        let k = [0.5f32, -0.25, 1.0, 0.0];
        let v = [1.0f32, 2.0, -3.0, 0.5];
        let out = turbo_decode_head(&[0.1, 0.2, 0.3, 0.4], &k, &v, &mut c, &sas);
        // Softmax over one entry is 1 regardless of approximation.
        for (a, b) in out.iter().zip(&v) {
            assert!((a - b).abs() < 0.03, "{a} vs {b}");
        }
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn decode_tracks_exact_attention_int4() {
        let err = decode_error(61, 96, 16, BitWidth::Int4, 32);
        assert!(err < 0.2, "int4 decode error {err}");
    }

    #[test]
    fn decode_int2_is_coarser_than_int4() {
        let e4 = decode_error(62, 64, 16, BitWidth::Int4, 16);
        let e2 = decode_error(62, 64, 16, BitWidth::Int2, 16);
        assert!(e4 < e2, "int4 {e4} must beat int2 {e2}");
    }

    #[test]
    fn decode_spans_resident_and_buffered_tokens() {
        // With nb=8 and 20 tokens: 2 flushed blocks + 4 buffered.
        let mut rng = TensorRng::new(63);
        let sas = Sas::paper_default();
        let mut c = cache(8, BitWidth::Int4, 8);
        let data = rng.normal(20, 8, 0.0, 1.0);
        let mut last = Vec::new();
        for t in 0..20 {
            last = turbo_decode_head(data.row(t), data.row(t), data.row(t), &mut c, &sas);
        }
        assert_eq!(c.resident_blocks().len(), 2);
        assert_eq!(c.buffer_len(), 4);
        // Exact reference over all 20 tokens.
        let qt = data.row_block(19, 1);
        let exact = naive_attention(&qt, &data, &data, Masking::Causal);
        for (a, b) in last.iter().zip(exact.row(0)) {
            assert!((a - b).abs() < 0.2, "{a} vs {b}");
        }
    }

    #[test]
    fn prefill_then_decode_composes() {
        let mut rng = TensorRng::new(64);
        let d = 16;
        let n0 = 64;
        let q0 = rng.normal(n0, d, 0.0, 1.0);
        let k0 = rng.normal(n0, d, 0.0, 1.0);
        let v0 = rng.normal(n0, d, 0.0, 1.0);
        let sas = Sas::paper_default();
        let mut c = cache(d, BitWidth::Int4, 16);
        crate::prefill::turbo_prefill_head(&q0, &k0, &v0, Masking::Causal, &sas, 32, 32, &mut c);
        // Decode 5 more tokens.
        let mut out = Vec::new();
        let mut ks = k0.clone();
        let mut vs = v0.clone();
        for t in 0..5 {
            let qt = rng.normal(1, d, 0.0, 1.0);
            let kt = rng.normal(1, d, 0.0, 1.0);
            let vt = rng.normal(1, d, 0.0, 1.0);
            ks.append_rows(&kt);
            vs.append_rows(&vt);
            out = turbo_decode_head(qt.row(0), kt.row(0), vt.row(0), &mut c, &sas);
            assert_eq!(c.len(), n0 + t + 1);
            let exact = naive_attention(&qt, &ks, &vs, Masking::Causal);
            for (a, b) in out.iter().zip(exact.row(0)) {
                assert!((a - b).abs() < 0.25, "step {t}: {a} vs {b}");
            }
        }
        assert_eq!(out.len(), d);
    }

    #[test]
    fn buffer_flush_mid_decode_preserves_accuracy() {
        // Cross the n_b boundary and verify no jump in error.
        let e = decode_error(65, 17, 8, BitWidth::Int4, 16); // flush at t=15
        assert!(e < 0.2, "error across flush {e}");
    }

    #[test]
    #[should_panic(expected = "query width mismatch")]
    fn wrong_query_width_panics() {
        let sas = Sas::paper_default();
        let mut c = cache(4, BitWidth::Int4, 8);
        turbo_decode_head(&[0.0; 3], &[0.0; 4], &[0.0; 4], &mut c, &sas);
    }
}
