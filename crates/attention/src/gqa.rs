//! Grouped-query attention (GQA) on top of the quantized engine.
//!
//! The models the paper evaluates (LLaMA3-8B, Phi-3) share each KV head
//! among a *group* of query heads. For FlashQ this matters twice:
//!
//! * the KV cache (and therefore compression) is per **KV head**, so the
//!   head-priority metric ranks KV heads;
//! * at decode time one integer dequantization of a KV block serves the
//!   whole query group — amortizing exactly the cost TurboAttention
//!   already minimizes.

use crate::api::TurboAttention;
use crate::decode::turbo_attend_cache;
use crate::head_select::{select_two_bit_heads, HeadStats, SelectionMethod};
use crate::prefill::turbo_prefill_head;
use turbo_kvcache::LayerKvCache;
use turbo_quant::BitWidth;
use turbo_tensor::Matrix;

/// A GQA layer configuration: `q_heads` query heads sharing `kv_heads`
/// caches (`q_heads % kv_heads == 0`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GqaLayout {
    /// Number of query heads.
    pub q_heads: usize,
    /// Number of KV heads.
    pub kv_heads: usize,
}

impl GqaLayout {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if `kv_heads == 0` or `q_heads` is not a multiple of
    /// `kv_heads`.
    pub fn new(q_heads: usize, kv_heads: usize) -> Self {
        assert!(kv_heads > 0, "need at least one KV head");
        assert_eq!(
            q_heads % kv_heads,
            0,
            "query heads must be a multiple of KV heads"
        );
        Self { q_heads, kv_heads }
    }

    /// Query heads per KV head.
    pub fn group_size(&self) -> usize {
        self.q_heads / self.kv_heads
    }

    /// The KV head serving query head `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= q_heads`.
    pub fn kv_head_of(&self, q: usize) -> usize {
        assert!(q < self.q_heads, "query head {q} out of range");
        q / self.group_size()
    }
}

impl TurboAttention {
    /// GQA prefill: `qs` has one matrix per **query** head, `ks`/`vs` one
    /// per **KV** head. Returns per-query-head outputs and the per-KV-head
    /// quantized cache.
    ///
    /// `n_two_bit` KV heads are demoted to INT2 by the priority metric.
    ///
    /// # Panics
    ///
    /// Panics if the tensor counts don't match `layout` or shapes are
    /// inconsistent.
    pub fn prefill_layer_gqa(
        &self,
        layout: GqaLayout,
        qs: &[Matrix],
        ks: &[Matrix],
        vs: &[Matrix],
        n_two_bit: usize,
    ) -> (Vec<Matrix>, LayerKvCache) {
        self.prefill_layer_gqa_on(turbo_runtime::global(), layout, qs, ks, vs, n_two_bit)
    }

    /// As [`TurboAttention::prefill_layer_gqa`], but on an explicit
    /// runtime. Every query head is one pooled task; group leaders build
    /// the shared per-KV-head cache, the rest attend through scratch
    /// caches. The index-ordered merge keeps outputs and cache contents
    /// bit-identical at any worker count.
    ///
    /// # Panics
    ///
    /// As [`TurboAttention::prefill_layer_gqa`].
    pub fn prefill_layer_gqa_on(
        &self,
        rt: &turbo_runtime::Runtime,
        layout: GqaLayout,
        qs: &[Matrix],
        ks: &[Matrix],
        vs: &[Matrix],
        n_two_bit: usize,
    ) -> (Vec<Matrix>, LayerKvCache) {
        assert_eq!(qs.len(), layout.q_heads, "one Q per query head");
        assert_eq!(ks.len(), layout.kv_heads, "one K per KV head");
        assert_eq!(vs.len(), layout.kv_heads, "one V per KV head");
        let d = ks[0].cols();
        let stats: Vec<HeadStats> = ks.iter().map(HeadStats::from_activations).collect();
        let bits: Vec<BitWidth> =
            select_two_bit_heads(&stats, n_two_bit, SelectionMethod::Priority);

        // One pooled task per query head. The group leader (first query
        // of each group) keeps its cache — it becomes the group's shared
        // cache; the rest run the same quantized math through a scratch
        // cache that is dropped, so the shared cache is written once.
        let results: Vec<(Matrix, Option<turbo_kvcache::HeadKvCache>)> =
            rt.par_map_indexed(layout.q_heads, |q_head| {
                let kv = layout.kv_head_of(q_head);
                let mut cache = turbo_kvcache::HeadKvCache::new(
                    d,
                    turbo_kvcache::KvCacheConfig {
                        bits: bits[kv],
                        group_size: self.config().group_size,
                        buffer_capacity: self.config().buffer_capacity,
                    },
                );
                let out = turbo_prefill_head(
                    &qs[q_head],
                    &ks[kv],
                    &vs[kv],
                    self.config().masking,
                    self.sas(),
                    self.config().block_r,
                    self.config().block_c,
                    &mut cache,
                );
                let leader = q_head % layout.group_size() == 0;
                (out.output, leader.then_some(cache))
            });

        let mut outs = Vec::with_capacity(layout.q_heads);
        let mut heads = Vec::with_capacity(layout.kv_heads);
        for (out, cache) in results {
            outs.push(out);
            if let Some(c) = cache {
                heads.push(c);
            }
        }
        (outs, LayerKvCache::from_heads(heads))
    }

    /// GQA decode: appends one `(k, v)` row per KV head, then attends one
    /// query row per query head against its group's shared cache.
    ///
    /// # Panics
    ///
    /// Panics if row counts don't match `layout`.
    pub fn decode_layer_gqa(
        &self,
        layout: GqaLayout,
        qs: &[&[f32]],
        ks: &[&[f32]],
        vs: &[&[f32]],
        layer: &mut LayerKvCache,
    ) -> Vec<Vec<f32>> {
        self.decode_layer_gqa_on(turbo_runtime::global(), layout, qs, ks, vs, layer)
    }

    /// As [`TurboAttention::decode_layer_gqa`], but on an explicit
    /// runtime: the per-KV-head appends stay serial (they mutate the
    /// shared cache), then the per-query-head attends fan out as pooled
    /// read-only tasks. Index-ordered results are bit-identical at any
    /// worker count.
    ///
    /// # Panics
    ///
    /// As [`TurboAttention::decode_layer_gqa`].
    pub fn decode_layer_gqa_on(
        &self,
        rt: &turbo_runtime::Runtime,
        layout: GqaLayout,
        qs: &[&[f32]],
        ks: &[&[f32]],
        vs: &[&[f32]],
        layer: &mut LayerKvCache,
    ) -> Vec<Vec<f32>> {
        assert_eq!(qs.len(), layout.q_heads, "one query row per query head");
        assert_eq!(ks.len(), layout.kv_heads, "one key row per KV head");
        assert_eq!(vs.len(), layout.kv_heads, "one value row per KV head");
        assert_eq!(layer.num_heads(), layout.kv_heads, "cache head mismatch");
        for kv in 0..layout.kv_heads {
            layer.head_mut(kv).append(ks[kv], vs[kv]);
        }
        let layer: &LayerKvCache = layer;
        rt.par_map_indexed(layout.q_heads, |q| {
            turbo_attend_cache(qs[q], layer.head(layout.kv_head_of(q)), self.sas())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::TurboConfig;
    use crate::reference::{naive_attention, Masking};
    use turbo_tensor::{relative_error, TensorRng};

    #[test]
    fn layout_math() {
        let l = GqaLayout::new(8, 2);
        assert_eq!(l.group_size(), 4);
        assert_eq!(l.kv_head_of(0), 0);
        assert_eq!(l.kv_head_of(3), 0);
        assert_eq!(l.kv_head_of(4), 1);
        assert_eq!(l.kv_head_of(7), 1);
    }

    #[test]
    #[should_panic(expected = "multiple of KV heads")]
    fn ragged_layout_panics() {
        GqaLayout::new(6, 4);
    }

    #[test]
    fn gqa_prefill_matches_reference_per_query_head() {
        let layout = GqaLayout::new(4, 2);
        let mut rng = TensorRng::new(1);
        let (n, d) = (64usize, 16usize);
        let qs: Vec<Matrix> = (0..4).map(|_| rng.normal(n, d, 0.0, 1.0)).collect();
        let ks: Vec<Matrix> = (0..2).map(|_| rng.normal(n, d, 0.0, 1.0)).collect();
        let vs: Vec<Matrix> = (0..2).map(|_| rng.normal(n, d, 0.0, 1.0)).collect();
        let engine = TurboAttention::new(TurboConfig::default());
        let (outs, cache) = engine.prefill_layer_gqa(layout, &qs, &ks, &vs, 0);
        assert_eq!(outs.len(), 4);
        assert_eq!(cache.num_heads(), 2);
        assert_eq!(cache.len(), n);
        for q_head in 0..4 {
            let kv = layout.kv_head_of(q_head);
            let exact = naive_attention(&qs[q_head], &ks[kv], &vs[kv], Masking::Causal);
            let rel = relative_error(&outs[q_head], &exact);
            assert!(rel < 0.06, "query head {q_head}: rel {rel}");
        }
    }

    #[test]
    fn gqa_decode_appends_once_per_kv_head() {
        let layout = GqaLayout::new(4, 2);
        let mut rng = TensorRng::new(2);
        let d = 8;
        let qs: Vec<Matrix> = (0..4).map(|_| rng.normal(8, d, 0.0, 1.0)).collect();
        let ks: Vec<Matrix> = (0..2).map(|_| rng.normal(8, d, 0.0, 1.0)).collect();
        let vs: Vec<Matrix> = (0..2).map(|_| rng.normal(8, d, 0.0, 1.0)).collect();
        let engine = TurboAttention::default();
        let (_, mut cache) = engine.prefill_layer_gqa(layout, &qs, &ks, &vs, 1);
        let q_rows: Vec<&[f32]> = qs.iter().map(|m| m.row(0)).collect();
        let kv_rows: Vec<&[f32]> = ks.iter().map(|m| m.row(0)).collect();
        let outs = engine.decode_layer_gqa(layout, &q_rows, &kv_rows, &kv_rows, &mut cache);
        assert_eq!(outs.len(), 4);
        assert_eq!(cache.len(), 9); // 8 prefill + 1 decoded, per KV head
                                    // Query heads sharing a KV head but with different queries should
                                    // produce different outputs.
        assert_ne!(outs[0], outs[1]);
    }

    #[test]
    fn pooled_gqa_is_bit_identical_at_any_worker_count() {
        let layout = GqaLayout::new(8, 2);
        let mut rng = TensorRng::new(4);
        let (n, d) = (48usize, 16usize);
        let qs: Vec<Matrix> = (0..8).map(|_| rng.normal(n, d, 0.0, 1.0)).collect();
        let ks: Vec<Matrix> = (0..2).map(|_| rng.normal(n, d, 0.0, 1.0)).collect();
        let vs: Vec<Matrix> = (0..2).map(|_| rng.normal(n, d, 0.0, 1.0)).collect();
        let engine = TurboAttention::default();
        let serial_rt = turbo_runtime::Runtime::with_workers(1);
        let (outs_base, mut cache_base) =
            engine.prefill_layer_gqa_on(&serial_rt, layout, &qs, &ks, &vs, 1);
        let q_rows: Vec<&[f32]> = qs.iter().map(|m| m.row(0)).collect();
        let kv_rows: Vec<&[f32]> = ks.iter().map(|m| m.row(0)).collect();
        let dec_base = engine.decode_layer_gqa_on(
            &serial_rt,
            layout,
            &q_rows,
            &kv_rows,
            &kv_rows,
            &mut cache_base,
        );
        for workers in [2usize, 8] {
            let rt = turbo_runtime::Runtime::with_workers(workers);
            let (outs, mut cache) = engine.prefill_layer_gqa_on(&rt, layout, &qs, &ks, &vs, 1);
            assert_eq!(outs_base, outs, "prefill diverged at {workers} workers");
            for kv in 0..layout.kv_heads {
                // Compare before decode mutates the caches.
                assert_eq!(
                    cache_base.head(kv).config(),
                    cache.head(kv).config(),
                    "head {kv} config diverged"
                );
            }
            let dec =
                engine.decode_layer_gqa_on(&rt, layout, &q_rows, &kv_rows, &kv_rows, &mut cache);
            assert_eq!(dec_base, dec, "decode diverged at {workers} workers");
            for kv in 0..layout.kv_heads {
                assert_eq!(
                    cache_base.head(kv).dequantize_all(),
                    cache.head(kv).dequantize_all(),
                    "head {kv} cache contents diverged"
                );
            }
        }
    }

    #[test]
    fn gqa_mixed_precision_ranks_kv_heads() {
        let layout = GqaLayout::new(4, 2);
        let mut rng = TensorRng::new(3);
        let d = 16;
        let qs: Vec<Matrix> = (0..4).map(|_| rng.normal(32, d, 0.0, 1.0)).collect();
        let ks = vec![
            rng.normal_with_channel_outliers(32, d, 1.0, &[2], 20.0),
            rng.normal(32, d, 0.0, 1.0),
        ];
        let vs: Vec<Matrix> = (0..2).map(|_| rng.normal(32, d, 0.0, 1.0)).collect();
        let engine = TurboAttention::default();
        let (_, cache) = engine.prefill_layer_gqa(layout, &qs, &ks, &vs, 1);
        assert_eq!(cache.head(0).config().bits, BitWidth::Int4);
        assert_eq!(cache.head(1).config().bits, BitWidth::Int2);
    }
}
