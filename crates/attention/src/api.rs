//! High-level TurboAttention engine.

use crate::decode::turbo_decode_head;
use crate::head_select::{select_two_bit_heads, HeadStats, SelectionMethod};
use crate::prefill::{turbo_prefill_head, PrefillOutput};
use crate::reference::Masking;
use turbo_kvcache::{HeadKvCache, KvCacheConfig, LayerKvCache};
use turbo_quant::BitWidth;
use turbo_softmax::{Poly3, Sas, PAPER_POLY, PAPER_THRESHOLD};
use turbo_tensor::Matrix;

/// Configuration of the TurboAttention engine.
///
/// Defaults follow section 5.2: `B_r = B_c = n_b = 64`, SAS threshold −6,
/// INT4 resident cache, causal masking.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TurboConfig {
    /// Query tile height `B_r`.
    pub block_r: usize,
    /// Key/value tile height `B_c`.
    pub block_c: usize,
    /// Resident KV-cache precision for uniform-precision heads.
    pub kv_bits: BitWidth,
    /// Channel-group size of the second quantization stage.
    pub group_size: usize,
    /// Decode-buffer capacity `n_b`.
    pub buffer_capacity: usize,
    /// SAS sparsification threshold `n_r` (negative).
    pub sas_threshold: i32,
    /// SAS fractional-part polynomial.
    pub sas_poly: Poly3,
    /// Attention masking mode.
    pub masking: Masking,
}

impl Default for TurboConfig {
    fn default() -> Self {
        Self {
            block_r: 64,
            block_c: 64,
            kv_bits: BitWidth::Int4,
            group_size: 64,
            buffer_capacity: 64,
            sas_threshold: PAPER_THRESHOLD,
            sas_poly: PAPER_POLY,
            masking: Masking::Causal,
        }
    }
}

impl TurboConfig {
    fn cache_config(&self, bits: BitWidth) -> KvCacheConfig {
        KvCacheConfig {
            bits,
            group_size: self.group_size,
            buffer_capacity: self.buffer_capacity,
        }
    }
}

/// The TurboAttention engine: FlashQ quantized execution + SAS softmax,
/// per head or across a whole layer with head-wise mixed precision.
///
/// # Example
///
/// ```
/// use turbo_attention::{TurboAttention, TurboConfig};
/// use turbo_tensor::TensorRng;
///
/// let mut rng = TensorRng::new(1);
/// let qs: Vec<_> = (0..4).map(|_| rng.normal(64, 16, 0.0, 1.0)).collect();
/// let ks: Vec<_> = (0..4).map(|_| rng.normal(64, 16, 0.0, 1.0)).collect();
/// let vs: Vec<_> = (0..4).map(|_| rng.normal(64, 16, 0.0, 1.0)).collect();
/// let engine = TurboAttention::new(TurboConfig::default());
/// // Mixed precision: demote the 2 lowest-priority heads to INT2.
/// let (outs, cache) = engine.prefill_layer_auto(&qs, &ks, &vs, 2);
/// assert_eq!(outs.len(), 4);
/// assert_eq!(cache.average_bits(), 3.0);
/// ```
#[derive(Clone, Debug)]
pub struct TurboAttention {
    config: TurboConfig,
    sas: Sas,
}

impl TurboAttention {
    /// Builds an engine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if block sizes, group size, or buffer capacity are zero, or
    /// the SAS threshold is non-negative.
    pub fn new(config: TurboConfig) -> Self {
        assert!(config.block_r > 0 && config.block_c > 0, "zero block size");
        assert!(config.group_size > 0, "zero group size");
        assert!(config.buffer_capacity > 0, "zero buffer capacity");
        let sas = Sas::new(config.sas_threshold, config.sas_poly);
        Self { config, sas }
    }

    /// The engine configuration.
    pub fn config(&self) -> &TurboConfig {
        &self.config
    }

    /// The SAS evaluator the engine uses.
    pub fn sas(&self) -> &Sas {
        &self.sas
    }

    /// Prefills one head, returning the attention output and the populated
    /// quantized cache (at the config's uniform `kv_bits`).
    pub fn prefill_head(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> (Matrix, HeadKvCache) {
        let mut cache = HeadKvCache::new(q.cols(), self.config.cache_config(self.config.kv_bits));
        let out = self.prefill_into(q, k, v, &mut cache);
        (out.output, cache)
    }

    /// Prefills one head into an existing (empty) cache, returning output
    /// and logsumexp.
    pub fn prefill_into(
        &self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        cache: &mut HeadKvCache,
    ) -> PrefillOutput {
        turbo_prefill_head(
            q,
            k,
            v,
            self.config.masking,
            &self.sas,
            self.config.block_r,
            self.config.block_c,
            cache,
        )
    }

    /// Decodes one token for one head (appends `k`/`v`, attends with `q`).
    pub fn decode_head(
        &self,
        q: &[f32],
        k: &[f32],
        v: &[f32],
        cache: &mut HeadKvCache,
    ) -> Vec<f32> {
        turbo_decode_head(q, k, v, cache, &self.sas)
    }

    /// Prefills a whole layer with explicit per-head bit widths.
    ///
    /// # Panics
    ///
    /// Panics if the per-head tensors/widths disagree in count or shape.
    pub fn prefill_layer(
        &self,
        qs: &[Matrix],
        ks: &[Matrix],
        vs: &[Matrix],
        bits_per_head: &[BitWidth],
    ) -> (Vec<Matrix>, LayerKvCache) {
        let h = qs.len();
        assert!(h > 0, "at least one head required");
        assert_eq!(ks.len(), h, "per-head K count mismatch");
        assert_eq!(vs.len(), h, "per-head V count mismatch");
        assert_eq!(bits_per_head.len(), h, "per-head bit-width count mismatch");
        let d = qs[0].cols();
        let mut layer = LayerKvCache::new(
            d,
            bits_per_head,
            self.config.group_size,
            self.config.buffer_capacity,
        );
        let mut outs = Vec::with_capacity(h);
        for i in 0..h {
            let out = turbo_prefill_head(
                &qs[i],
                &ks[i],
                &vs[i],
                self.config.masking,
                &self.sas,
                self.config.block_r,
                self.config.block_c,
                layer.head_mut(i),
            );
            outs.push(out.output);
        }
        (outs, layer)
    }

    /// Prefills a layer with automatic head-wise mixed precision: computes
    /// [`HeadStats`] from each head's keys and demotes the `n_two_bit`
    /// lowest-priority heads to INT2 (Equations 11–12).
    pub fn prefill_layer_auto(
        &self,
        qs: &[Matrix],
        ks: &[Matrix],
        vs: &[Matrix],
        n_two_bit: usize,
    ) -> (Vec<Matrix>, LayerKvCache) {
        let stats: Vec<HeadStats> = ks.iter().map(HeadStats::from_activations).collect();
        let bits = select_two_bit_heads(&stats, n_two_bit, SelectionMethod::Priority);
        self.prefill_layer(qs, ks, vs, &bits)
    }

    /// Decodes one token across a layer: per-head query/key/value rows in,
    /// per-head output rows out.
    ///
    /// # Panics
    ///
    /// Panics if row counts don't match the layer's head count.
    pub fn decode_layer(
        &self,
        qs: &[&[f32]],
        ks: &[&[f32]],
        vs: &[&[f32]],
        layer: &mut LayerKvCache,
    ) -> Vec<Vec<f32>> {
        let h = layer.num_heads();
        assert_eq!(qs.len(), h, "one query row per head required");
        assert_eq!(ks.len(), h, "one key row per head required");
        assert_eq!(vs.len(), h, "one value row per head required");
        (0..h)
            .map(|i| turbo_decode_head(qs[i], ks[i], vs[i], layer.head_mut(i), &self.sas))
            .collect()
    }
}

impl Default for TurboAttention {
    fn default() -> Self {
        Self::new(TurboConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::naive_attention;
    use turbo_tensor::{relative_error, TensorRng};

    fn heads(seed: u64, h: usize, n: usize, d: usize) -> Vec<Matrix> {
        let mut rng = TensorRng::new(seed);
        (0..h).map(|_| rng.normal(n, d, 0.0, 1.0)).collect()
    }

    #[test]
    fn prefill_head_matches_reference() {
        let q = heads(70, 1, 64, 16).pop().unwrap();
        let k = heads(71, 1, 64, 16).pop().unwrap();
        let v = heads(72, 1, 64, 16).pop().unwrap();
        let engine = TurboAttention::default();
        let (out, cache) = engine.prefill_head(&q, &k, &v);
        assert_eq!(cache.len(), 64);
        let exact = naive_attention(&q, &k, &v, Masking::Causal);
        assert!(relative_error(&out, &exact) < 0.06);
    }

    #[test]
    fn layer_auto_selects_requested_number_of_two_bit_heads() {
        let qs = heads(73, 4, 64, 16);
        let mut rng = TensorRng::new(74);
        // Heads 0 and 2 get channel outliers -> high priority -> stay INT4.
        let ks = vec![
            rng.normal_with_channel_outliers(64, 16, 1.0, &[3], 20.0),
            rng.normal(64, 16, 0.0, 1.0),
            rng.normal_with_channel_outliers(64, 16, 1.0, &[7], 20.0),
            rng.normal(64, 16, 0.0, 1.0),
        ];
        let vs = heads(75, 4, 64, 16);
        let engine = TurboAttention::default();
        let (_, cache) = engine.prefill_layer_auto(&qs, &ks, &vs, 2);
        assert_eq!(cache.head(0).config().bits, BitWidth::Int4);
        assert_eq!(cache.head(1).config().bits, BitWidth::Int2);
        assert_eq!(cache.head(2).config().bits, BitWidth::Int4);
        assert_eq!(cache.head(3).config().bits, BitWidth::Int2);
    }

    #[test]
    fn layer_prefill_outputs_match_per_head_prefill() {
        let qs = heads(76, 2, 32, 8);
        let ks = heads(77, 2, 32, 8);
        let vs = heads(78, 2, 32, 8);
        let engine = TurboAttention::default();
        let (outs, _) = engine.prefill_layer(&qs, &ks, &vs, &[BitWidth::Int4, BitWidth::Int4]);
        for i in 0..2 {
            let (single, _) = engine.prefill_head(&qs[i], &ks[i], &vs[i]);
            assert_eq!(outs[i], single);
        }
    }

    #[test]
    fn decode_layer_round_trip() {
        let engine = TurboAttention::new(TurboConfig {
            buffer_capacity: 4,
            ..TurboConfig::default()
        });
        let qs = heads(79, 2, 16, 8);
        let ks = heads(80, 2, 16, 8);
        let vs = heads(81, 2, 16, 8);
        let (_, mut cache) = engine.prefill_layer(&qs, &ks, &vs, &[BitWidth::Int4; 2]);
        let mut rng = TensorRng::new(82);
        let step_q = rng.normal(2, 8, 0.0, 1.0);
        let outs = engine.decode_layer(
            &[step_q.row(0), step_q.row(1)],
            &[step_q.row(0), step_q.row(1)],
            &[step_q.row(0), step_q.row(1)],
            &mut cache,
        );
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].len(), 8);
        assert_eq!(cache.len(), 17);
    }

    #[test]
    #[should_panic(expected = "zero block size")]
    fn invalid_config_panics() {
        TurboAttention::new(TurboConfig {
            block_r: 0,
            ..TurboConfig::default()
        });
    }
}
