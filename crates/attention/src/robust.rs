//! Fault-tolerant attention: numeric guards and the graceful precision
//! degradation ladder **INT2 → INT4 → INT8 → FP16**.
//!
//! The quantized fast path trades representable range for throughput. When
//! a numeric fault is detected — NaN/Inf in an input row, a quantization
//! scale overflow, a non-finite attention output — the engine does not
//! panic: it records the event in a [`HealthStats`] registry, promotes the
//! affected head cache one rung up the ladder (rebuilding it losslessly
//! from its own dequantized contents), and retries. The top rung keeps raw
//! floating-point K/V (the "FP16" tier of the paper's memory accounting,
//! stored as f32 here) and computes exact attention, so the ladder always
//! terminates with an answer for finite inputs.
//!
//! Non-finite *elements* in inputs are sanitized to `0.0` (the value a
//! masked/sparsified score contributes) rather than rejected, so a single
//! flipped bit upstream degrades one channel instead of killing the
//! request.

use crate::api::{TurboAttention, TurboConfig};
use crate::decode::turbo_attend_cache;
use crate::reference::{naive_attention, Masking};
use turbo_kvcache::{CacheError, HeadKvCache, KvCacheConfig};
use turbo_quant::{BitWidth, QuantError};
use turbo_robust::{HealthEvent, HealthStats};
use turbo_softmax::SoftmaxError;
use turbo_tensor::Matrix;

/// Inputs whose magnitude exceeds this bound skip the quantized prefill
/// path entirely: the progressive quantizer's outer scale would overflow.
/// `f32::MAX / 512` leaves headroom for the `× headroom / divisor` scale
/// arithmetic of every stage.
pub const QUANT_SAFE_MAX: f32 = f32::MAX / 512.0;

/// Decode-buffer capacity used at the INT8 rung: large enough that the
/// buffer never reaches it, so tokens stay INT8 forever instead of being
/// second-stage compressed to INT4/2.
const INT8_RESIDENT_CAPACITY: usize = usize::MAX / 2;

/// Unified error type of the fault-tolerant attention paths.
///
/// Wraps the per-layer errors (cache, quantizer, softmax) plus the shape
/// violations the robust engine screens itself.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttnError {
    /// A query/key/value row had the wrong number of channels.
    WidthMismatch {
        /// Channels the cache was built for.
        expected: usize,
        /// Channels the caller supplied.
        got: usize,
    },
    /// Q/K/V tensors disagree in shape.
    ShapeMismatch,
    /// Prefill requires an empty cache.
    NonEmptyCache,
    /// Attending requires a non-empty cache.
    EmptyCache,
    /// Every rung of the ladder failed (not reachable for finite inputs —
    /// the FP16 rung is exact).
    LadderExhausted,
    /// A cache operation failed.
    Cache(CacheError),
    /// Quantization failed.
    Quant(QuantError),
    /// Softmax could not produce a distribution.
    Softmax(SoftmaxError),
}

impl std::fmt::Display for AttnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttnError::WidthMismatch { expected, got } => {
                write!(f, "attention width mismatch: expected {expected} channels, got {got}")
            }
            AttnError::ShapeMismatch => write!(f, "Q/K/V shape mismatch"),
            AttnError::NonEmptyCache => write!(f, "prefill requires an empty cache"),
            AttnError::EmptyCache => write!(f, "cannot attend to an empty cache"),
            AttnError::LadderExhausted => write!(f, "precision ladder exhausted"),
            AttnError::Cache(e) => write!(f, "cache: {e}"),
            AttnError::Quant(e) => write!(f, "quant: {e}"),
            AttnError::Softmax(e) => write!(f, "softmax: {e}"),
        }
    }
}

impl std::error::Error for AttnError {}

impl From<CacheError> for AttnError {
    fn from(e: CacheError) -> Self {
        AttnError::Cache(e)
    }
}

impl From<QuantError> for AttnError {
    fn from(e: QuantError) -> Self {
        AttnError::Quant(e)
    }
}

impl From<SoftmaxError> for AttnError {
    fn from(e: SoftmaxError) -> Self {
        AttnError::Softmax(e)
    }
}

/// One rung of the precision degradation ladder, lowest (most compressed)
/// first. "FP16" follows the paper's naming for the uncompressed tier; the
/// reference implementation stores f32.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PrecisionLevel {
    /// 2-bit resident cache (most compressed, least robust).
    Int2,
    /// 4-bit resident cache — the paper's default.
    Int4,
    /// Everything stays in the INT8 decode buffer; no second stage.
    Int8,
    /// Raw floating-point K/V with exact attention (always succeeds).
    Fp16,
}

impl PrecisionLevel {
    /// The next rung up (toward full precision), or `None` at the top.
    pub fn next(self) -> Option<Self> {
        match self {
            PrecisionLevel::Int2 => Some(PrecisionLevel::Int4),
            PrecisionLevel::Int4 => Some(PrecisionLevel::Int8),
            PrecisionLevel::Int8 => Some(PrecisionLevel::Fp16),
            PrecisionLevel::Fp16 => None,
        }
    }

    /// Bits per cached element at this rung.
    pub fn bits(self) -> f32 {
        match self {
            PrecisionLevel::Int2 => 2.0,
            PrecisionLevel::Int4 => 4.0,
            PrecisionLevel::Int8 => 8.0,
            PrecisionLevel::Fp16 => 16.0,
        }
    }

    /// The rung matching a resident-cache [`BitWidth`]. INT3 has no rung
    /// of its own and starts at INT4 (the nearest safe-or-safer rung).
    pub fn from_bit_width(bits: BitWidth) -> Self {
        match bits {
            BitWidth::Int2 => PrecisionLevel::Int2,
            BitWidth::Int3 | BitWidth::Int4 => PrecisionLevel::Int4,
            BitWidth::Int8 => PrecisionLevel::Int8,
        }
    }
}

impl std::fmt::Display for PrecisionLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PrecisionLevel::Int2 => "INT2",
            PrecisionLevel::Int4 => "INT4",
            PrecisionLevel::Int8 => "INT8",
            PrecisionLevel::Fp16 => "FP16",
        };
        f.write_str(s)
    }
}

/// A per-head KV cache that can climb the precision ladder.
///
/// At the INT2/INT4 rungs this wraps a normal [`HeadKvCache`]; at INT8 the
/// decode buffer is made effectively unbounded so tokens are never
/// second-stage compressed; at FP16 raw rows are kept and attention is
/// exact.
#[derive(Clone, Debug)]
pub struct RobustHeadCache {
    d: usize,
    group_size: usize,
    buffer_capacity: usize,
    level: PrecisionLevel,
    quant: Option<HeadKvCache>,
    k_exact: Matrix,
    v_exact: Matrix,
}

impl RobustHeadCache {
    /// Creates an empty cache for a `d`-channel head at the given rung.
    ///
    /// # Panics
    ///
    /// Panics if `d`, `group_size`, or `buffer_capacity` is zero.
    pub fn new(d: usize, level: PrecisionLevel, group_size: usize, buffer_capacity: usize) -> Self {
        assert!(d > 0, "head dimension must be positive");
        assert!(group_size > 0, "group size must be positive");
        assert!(buffer_capacity > 0, "buffer capacity must be positive");
        let quant = Self::quant_storage(d, level, group_size, buffer_capacity);
        Self {
            d,
            group_size,
            buffer_capacity,
            level,
            quant,
            k_exact: Matrix::zeros(0, d),
            v_exact: Matrix::zeros(0, d),
        }
    }

    fn quant_storage(
        d: usize,
        level: PrecisionLevel,
        group_size: usize,
        buffer_capacity: usize,
    ) -> Option<HeadKvCache> {
        let config = match level {
            PrecisionLevel::Int2 => KvCacheConfig {
                bits: BitWidth::Int2,
                group_size,
                buffer_capacity,
            },
            PrecisionLevel::Int4 => KvCacheConfig {
                bits: BitWidth::Int4,
                group_size,
                buffer_capacity,
            },
            // The bits setting is never exercised: the buffer never fills.
            PrecisionLevel::Int8 => KvCacheConfig {
                bits: BitWidth::Int4,
                group_size,
                buffer_capacity: INT8_RESIDENT_CAPACITY,
            },
            PrecisionLevel::Fp16 => return None,
        };
        Some(HeadKvCache::new(d, config))
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.d
    }

    /// The current rung.
    pub fn level(&self) -> PrecisionLevel {
        self.level
    }

    /// Cached tokens.
    pub fn len(&self) -> usize {
        match &self.quant {
            Some(c) => c.len(),
            None => self.k_exact.rows(),
        }
    }

    /// Whether the cache holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstructs the cached `(K, V)` in f32.
    pub fn dequantize_all(&self) -> (Matrix, Matrix) {
        match &self.quant {
            Some(c) => c.dequantize_all(),
            None => (self.k_exact.clone(), self.v_exact.clone()),
        }
    }

    /// Moves the cache one rung up the ladder, rebuilding it from its own
    /// dequantized contents so no token is lost. Records
    /// [`HealthEvent::PrecisionPromotion`]. Returns `false` (and does
    /// nothing) if already at the top.
    pub fn promote(&mut self, health: Option<&HealthStats>) -> bool {
        let Some(next) = self.level.next() else {
            return false;
        };
        let (k, v) = self.dequantize_all();
        self.level = next;
        self.quant = Self::quant_storage(self.d, next, self.group_size, self.buffer_capacity);
        match &mut self.quant {
            Some(c) => {
                for t in 0..k.rows() {
                    // Dequantized rows are finite (codes × capped scales),
                    // so the panicking append cannot fire here.
                    c.append(k.row(t), v.row(t));
                }
                self.k_exact = Matrix::zeros(0, self.d);
                self.v_exact = Matrix::zeros(0, self.d);
            }
            None => {
                self.k_exact = k;
                self.v_exact = v;
            }
        }
        if let Some(h) = health {
            h.record(HealthEvent::PrecisionPromotion);
        }
        true
    }

    /// Appends one token's K/V rows at the current rung.
    ///
    /// # Errors
    ///
    /// Validation errors leave the cache untouched.
    /// [`CacheError::ScaleOverflow`] means the token *was* buffered but
    /// could not be compressed — promote and carry on.
    pub fn try_append(&mut self, k: &[f32], v: &[f32]) -> Result<(), CacheError> {
        if k.len() != self.d {
            return Err(CacheError::WidthMismatch {
                expected: self.d,
                got: k.len(),
            });
        }
        match &mut self.quant {
            Some(c) => c.try_append(k, v),
            None => {
                if v.len() != self.d {
                    return Err(CacheError::WidthMismatch {
                        expected: self.d,
                        got: v.len(),
                    });
                }
                if let Some(channel) = k.iter().chain(v).position(|x| !x.is_finite()) {
                    return Err(CacheError::NonFinite {
                        channel: channel % self.d,
                    });
                }
                self.k_exact.append_rows(&Matrix::from_rows(&[k]));
                self.v_exact.append_rows(&Matrix::from_rows(&[v]));
                Ok(())
            }
        }
    }

    /// Attends a single query row over the cached tokens at the current
    /// rung (quantized fast path below FP16, exact at FP16).
    ///
    /// # Errors
    ///
    /// [`AttnError::EmptyCache`] on an empty cache.
    pub fn attend(&self, q: &[f32], engine: &TurboAttention) -> Result<Vec<f32>, AttnError> {
        if q.len() != self.d {
            return Err(AttnError::WidthMismatch {
                expected: self.d,
                got: q.len(),
            });
        }
        if self.is_empty() {
            return Err(AttnError::EmptyCache);
        }
        match &self.quant {
            Some(c) => Ok(turbo_attend_cache(q, c, engine.sas())),
            None => {
                let qm = Matrix::from_rows(&[q]);
                // A decode-step query sees every cached token: full mask.
                let out = naive_attention(&qm, &self.k_exact, &self.v_exact, Masking::Full);
                Ok(out.row(0).to_vec())
            }
        }
    }
}

/// Counts the non-finite elements of `row` and replaces them with `0.0`.
fn sanitize_row(row: &mut [f32]) -> u64 {
    let mut n = 0u64;
    for x in row.iter_mut() {
        if !x.is_finite() {
            *x = 0.0;
            n += 1;
        }
    }
    n
}

/// The fault-tolerant TurboAttention engine: wraps [`TurboAttention`] with
/// input screening, output screening, and the promotion ladder, recording
/// every intervention in a [`HealthStats`] registry instead of panicking.
///
/// # Example
///
/// ```
/// use turbo_attention::robust::RobustAttention;
/// use turbo_attention::TurboConfig;
/// use turbo_robust::HealthEvent;
///
/// let engine = RobustAttention::new(TurboConfig::default());
/// let mut cache = engine.new_cache(4);
/// // A poisoned key row is sanitized, not fatal.
/// let out = engine
///     .try_decode(&[0.1; 4], &[f32::NAN, 1.0, 1.0, 1.0], &[1.0; 4], &mut cache)
///     .unwrap();
/// assert!(out.iter().all(|x| x.is_finite()));
/// assert_eq!(engine.health().count(HealthEvent::NonFiniteInput), 1);
/// ```
#[derive(Clone, Debug)]
pub struct RobustAttention {
    engine: TurboAttention,
    health: HealthStats,
    start_level: PrecisionLevel,
}

impl RobustAttention {
    /// Builds a fault-tolerant engine; the starting rung follows
    /// `config.kv_bits`.
    pub fn new(config: TurboConfig) -> Self {
        let start_level = PrecisionLevel::from_bit_width(config.kv_bits);
        Self {
            engine: TurboAttention::new(config),
            health: HealthStats::new(),
            start_level,
        }
    }

    /// The wrapped deterministic engine.
    pub fn engine(&self) -> &TurboAttention {
        &self.engine
    }

    /// The health registry every intervention is recorded in.
    pub fn health(&self) -> &HealthStats {
        &self.health
    }

    /// A fresh head cache at the engine's starting rung.
    pub fn new_cache(&self, d: usize) -> RobustHeadCache {
        let c = self.engine.config();
        RobustHeadCache::new(d, self.start_level, c.group_size, c.buffer_capacity)
    }

    /// Decodes one token, climbing the ladder as needed. Never panics for
    /// any input whose rows have the right width: non-finite elements are
    /// sanitized to 0 ([`HealthEvent::NonFiniteInput`] per element), a
    /// failed compression promotes the cache
    /// ([`HealthEvent::ScaleOverflow`] + [`HealthEvent::PrecisionFallback`]),
    /// and a non-finite output triggers an exact recomputation
    /// ([`HealthEvent::NonFiniteOutput`]).
    ///
    /// # Errors
    ///
    /// Only shape violations ([`AttnError::WidthMismatch`]) are errors.
    pub fn try_decode(
        &self,
        q: &[f32],
        k: &[f32],
        v: &[f32],
        cache: &mut RobustHeadCache,
    ) -> Result<Vec<f32>, AttnError> {
        let d = cache.head_dim();
        for row in [q, k, v] {
            if row.len() != d {
                return Err(AttnError::WidthMismatch {
                    expected: d,
                    got: row.len(),
                });
            }
        }
        let mut q = q.to_vec();
        let mut k = k.to_vec();
        let mut v = v.to_vec();
        let bad = sanitize_row(&mut q) + sanitize_row(&mut k) + sanitize_row(&mut v);
        if bad > 0 {
            self.health.record_n(HealthEvent::NonFiniteInput, bad);
        }

        match cache.try_append(&k, &v) {
            Ok(()) => {}
            Err(CacheError::ScaleOverflow) => {
                // The token is buffered; compression failed. Promote and
                // carry on — the rebuild recompresses at the higher rung.
                self.health.record(HealthEvent::ScaleOverflow);
                self.health.record(HealthEvent::PrecisionFallback);
                cache.promote(Some(&self.health));
            }
            Err(e) => return Err(e.into()),
        }

        loop {
            let out = cache.attend(&q, &self.engine)?;
            if out.iter().all(|x| x.is_finite()) {
                return Ok(out);
            }
            self.health.record(HealthEvent::NonFiniteOutput);
            self.health.record(HealthEvent::PrecisionFallback);
            if !cache.promote(Some(&self.health)) {
                return Err(AttnError::LadderExhausted);
            }
        }
    }

    /// Prefills a head, climbing the ladder as needed. Non-finite input
    /// elements are sanitized; inputs too large for the quantizer skip
    /// straight to the FP16 rung; a non-finite quantized output is redone
    /// exactly.
    ///
    /// # Errors
    ///
    /// [`AttnError::ShapeMismatch`] / [`AttnError::NonEmptyCache`] on
    /// caller mistakes; never on numeric faults.
    pub fn try_prefill(
        &self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        cache: &mut RobustHeadCache,
    ) -> Result<Matrix, AttnError> {
        if q.shape() != k.shape() || k.shape() != v.shape() {
            return Err(AttnError::ShapeMismatch);
        }
        if q.cols() != cache.head_dim() {
            return Err(AttnError::WidthMismatch {
                expected: cache.head_dim(),
                got: q.cols(),
            });
        }
        if !cache.is_empty() {
            return Err(AttnError::NonEmptyCache);
        }

        let mut bad = 0u64;
        let sanitize = |m: &Matrix, bad: &mut u64| {
            let mut m = m.clone();
            for r in 0..m.rows() {
                *bad += sanitize_row(m.row_mut(r));
            }
            m
        };
        let q = sanitize(q, &mut bad);
        let k = sanitize(k, &mut bad);
        let v = sanitize(v, &mut bad);
        if bad > 0 {
            self.health.record_n(HealthEvent::NonFiniteInput, bad);
        }

        // Magnitude guard: values this large overflow the quantizer's
        // scale arithmetic. Go straight to the exact rung.
        let too_large = |m: &Matrix| m.as_slice().iter().any(|x| x.abs() > QUANT_SAFE_MAX);
        if cache.quant.is_some() && (too_large(&k) || too_large(&v)) {
            self.health.record(HealthEvent::ScaleOverflow);
            self.health.record(HealthEvent::PrecisionFallback);
            while cache.level() != PrecisionLevel::Fp16 {
                cache.promote(Some(&self.health));
            }
        }

        let masking = self.engine.config().masking;
        match &mut cache.quant {
            Some(head) => {
                let out = self.engine.prefill_into(&q, &k, &v, head).output;
                if out.as_slice().iter().all(|x| x.is_finite()) {
                    return Ok(out);
                }
                // Quantized sweep produced garbage: redo exactly at FP16.
                self.health.record(HealthEvent::NonFiniteOutput);
                self.health.record(HealthEvent::PrecisionFallback);
                while cache.level() != PrecisionLevel::Fp16 {
                    cache.promote(Some(&self.health));
                }
                cache.k_exact = k.clone();
                cache.v_exact = v.clone();
                Ok(naive_attention(&q, &k, &v, masking))
            }
            None => {
                cache.k_exact = k.clone();
                cache.v_exact = v.clone();
                Ok(naive_attention(&q, &k, &v, masking))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_robust::FaultInjector;
    use turbo_tensor::{relative_error, TensorRng};

    fn engine() -> RobustAttention {
        RobustAttention::new(TurboConfig::default())
    }

    #[test]
    fn ladder_steps_are_ordered() {
        assert_eq!(PrecisionLevel::Int2.next(), Some(PrecisionLevel::Int4));
        assert_eq!(PrecisionLevel::Int4.next(), Some(PrecisionLevel::Int8));
        assert_eq!(PrecisionLevel::Int8.next(), Some(PrecisionLevel::Fp16));
        assert_eq!(PrecisionLevel::Fp16.next(), None);
        assert!(PrecisionLevel::Int2 < PrecisionLevel::Fp16);
        assert_eq!(PrecisionLevel::Int8.bits(), 8.0);
    }

    #[test]
    fn promotion_climbs_to_the_top_without_losing_tokens() {
        let mut rng = TensorRng::new(0x0BAD_5EED);
        let data = rng.normal(24, 8, 0.0, 1.0);
        let mut cache = RobustHeadCache::new(8, PrecisionLevel::Int2, 32, 8);
        for t in 0..24 {
            cache.try_append(data.row(t), data.row(t)).unwrap();
        }
        let health = HealthStats::new();
        let mut climbs = 0;
        while cache.promote(Some(&health)) {
            climbs += 1;
            assert_eq!(cache.len(), 24, "promotion must not lose tokens");
        }
        assert_eq!(climbs, 3);
        assert_eq!(cache.level(), PrecisionLevel::Fp16);
        assert_eq!(health.count(HealthEvent::PrecisionPromotion), 3);
        assert!(!cache.promote(Some(&health)), "top rung cannot promote");
        // INT2 start quantized coarsely, but the data must still resemble
        // the original (promotion is lossless from the *cached* contents).
        let (kq, _) = cache.dequantize_all();
        assert!(relative_error(&kq, &data) < 0.6);
    }

    #[test]
    fn decode_matches_plain_engine_on_clean_inputs() {
        let robust = engine();
        let plain = TurboAttention::new(TurboConfig::default());
        let mut rng = TensorRng::new(0x1111);
        let data = rng.normal(20, 16, 0.0, 1.0);
        let mut rc = robust.new_cache(16);
        let mut pc = HeadKvCache::new(
            16,
            KvCacheConfig {
                bits: BitWidth::Int4,
                group_size: 64,
                buffer_capacity: 64,
            },
        );
        for t in 0..20 {
            let r = robust
                .try_decode(data.row(t), data.row(t), data.row(t), &mut rc)
                .unwrap();
            let p = plain.decode_head(data.row(t), data.row(t), data.row(t), &mut pc);
            assert_eq!(r, p, "clean inputs must take the identical fast path");
        }
        assert!(robust.health().is_clean());
    }

    #[test]
    fn injected_nan_inputs_are_sanitized_and_counted() {
        let robust = engine();
        let mut rng = TensorRng::new(0x2222);
        let mut inj = FaultInjector::new(0xFA_017);
        let mut cache = robust.new_cache(8);
        let mut injected = 0u64;
        for t in 0..12 {
            let mut k = rng.normal(1, 8, 0.0, 1.0);
            let v = rng.normal(1, 8, 0.0, 1.0);
            let q = rng.normal(1, 8, 0.0, 1.0);
            if t % 3 == 0 {
                let fault = inj.inject_non_finite(&mut k, 2);
                injected += fault.indices.len() as u64;
            }
            let out = robust
                .try_decode(q.row(0), k.row(0), v.row(0), &mut cache)
                .unwrap();
            assert!(out.iter().all(|x| x.is_finite()), "step {t} output poisoned");
        }
        assert_eq!(robust.health().count(HealthEvent::NonFiniteInput), injected);
        assert_eq!(cache.len(), 12);
    }

    #[test]
    fn oversized_prefill_falls_back_to_exact_rung() {
        let robust = engine();
        let mut rng = TensorRng::new(0x3333);
        let q = rng.normal(8, 4, 0.0, 1.0);
        let mut k = rng.normal(8, 4, 0.0, 1.0);
        k.set(3, 1, f32::MAX / 4.0); // beyond QUANT_SAFE_MAX
        let v = rng.normal(8, 4, 0.0, 1.0);
        let mut cache = robust.new_cache(4);
        let out = robust.try_prefill(&q, &k, &v, &mut cache).unwrap();
        assert_eq!(cache.level(), PrecisionLevel::Fp16);
        assert!(out.as_slice().iter().all(|x| x.is_finite()));
        assert_eq!(robust.health().count(HealthEvent::ScaleOverflow), 1);
        assert_eq!(robust.health().count(HealthEvent::PrecisionFallback), 1);
        // Int4 -> Int8 -> Fp16 is two promotion steps.
        assert_eq!(robust.health().count(HealthEvent::PrecisionPromotion), 2);
        let exact = naive_attention(&q, &k, &v, Masking::Causal);
        assert_eq!(out, exact, "FP16 rung is the exact reference");
        // Decode continues to work on the promoted cache.
        let step = robust
            .try_decode(&[0.1; 4], &[0.2; 4], &[0.3; 4], &mut cache)
            .unwrap();
        assert_eq!(step.len(), 4);
        assert_eq!(cache.len(), 9);
    }

    #[test]
    fn clean_prefill_stays_on_the_quantized_rung() {
        let robust = engine();
        let mut rng = TensorRng::new(0x4444);
        let q = rng.normal(32, 8, 0.0, 1.0);
        let k = rng.normal(32, 8, 0.0, 1.0);
        let v = rng.normal(32, 8, 0.0, 1.0);
        let mut cache = robust.new_cache(8);
        let out = robust.try_prefill(&q, &k, &v, &mut cache).unwrap();
        assert_eq!(cache.level(), PrecisionLevel::Int4);
        assert_eq!(cache.len(), 32);
        assert!(robust.health().is_clean());
        let exact = naive_attention(&q, &k, &v, Masking::Causal);
        assert!(relative_error(&out, &exact) < 0.1);
    }

    #[test]
    fn shape_violations_are_errors_not_panics() {
        let robust = engine();
        let mut cache = robust.new_cache(4);
        assert_eq!(
            robust.try_decode(&[0.0; 3], &[0.0; 4], &[0.0; 4], &mut cache),
            Err(AttnError::WidthMismatch { expected: 4, got: 3 })
        );
        let q = Matrix::zeros(4, 4);
        assert_eq!(
            robust.try_prefill(&q, &Matrix::zeros(5, 4), &q, &mut cache),
            Err(AttnError::ShapeMismatch)
        );
        let empty = robust.new_cache(4);
        assert_eq!(
            empty.attend(&[0.0; 4], robust.engine()),
            Err(AttnError::EmptyCache)
        );
    }

    #[test]
    fn fp16_rung_decode_is_exact() {
        let robust = engine();
        let mut cache = RobustHeadCache::new(4, PrecisionLevel::Fp16, 64, 64);
        let mut rng = TensorRng::new(0x5555);
        let data = rng.normal(10, 4, 0.0, 1.0);
        let mut ks = Matrix::zeros(0, 4);
        let mut vs = Matrix::zeros(0, 4);
        for t in 0..10 {
            ks.append_rows(&data.row_block(t, 1));
            vs.append_rows(&data.row_block(t, 1));
            let out = robust
                .try_decode(data.row(t), data.row(t), data.row(t), &mut cache)
                .unwrap();
            let exact = naive_attention(&data.row_block(t, 1), &ks, &vs, Masking::Full);
            for (a, b) in out.iter().zip(exact.row(0)) {
                assert!((a - b).abs() < 1e-5, "step {t}: {a} vs {b}");
            }
        }
        assert_eq!(cache.level(), PrecisionLevel::Fp16);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(AttnError::from(CacheError::ScaleOverflow)
            .to_string()
            .contains("scale overflow"));
        assert!(AttnError::from(QuantError::NonFiniteInput)
            .to_string()
            .contains("non-finite"));
        assert!(AttnError::from(SoftmaxError::NoFiniteEntry { row: 2 })
            .to_string()
            .contains("row 2"));
        assert_eq!(PrecisionLevel::Int8.to_string(), "INT8");
    }
}
