//! # turbo-attention
//!
//! The paper's primary contribution: quantized execution of the attention
//! mechanism (TurboAttention = FlashQ + SAS), together with the exact
//! references it is measured against.
//!
//! * [`mod@reference`] — naive `softmax(QKᵀ/√d)V` and an exact FlashAttention
//!   tiled implementation with online softmax (f32 and FP16-emulated).
//! * [`prefill`] — Algorithm 1: tiled INT8 attention with SAS, writing the
//!   progressively quantized KV cache as it sweeps.
//! * [`decode`] — Algorithm 2: single-token attention against the
//!   quantized cache with integer dequantization (INT4/2 → INT8).
//! * [`head_select`] — head-wise mixed precision: the `gap × std` priority
//!   metric of Equation 11 plus the entropy/min-max/variation ablation
//!   baselines of Figure 7b.
//! * [`api`] — the user-facing [`TurboAttention`] engine combining all of
//!   the above across heads.
//! * [`capability`] — the Table 1 technique-capability matrix.
//!
//! # Example
//!
//! ```
//! use turbo_attention::{TurboAttention, TurboConfig};
//! use turbo_tensor::TensorRng;
//!
//! let mut rng = TensorRng::new(0);
//! let (q, k, v) = (
//!     rng.normal(128, 32, 0.0, 1.0),
//!     rng.normal(128, 32, 0.0, 1.0),
//!     rng.normal(128, 32, 0.0, 1.0),
//! );
//! let engine = TurboAttention::new(TurboConfig::default());
//! let (out, mut cache) = engine.prefill_head(&q, &k, &v);
//! assert_eq!(out.shape(), (128, 32));
//! // Decode one more token against the quantized cache.
//! let qt = rng.normal(1, 32, 0.0, 1.0);
//! let kt = rng.normal(1, 32, 0.0, 1.0);
//! let vt = rng.normal(1, 32, 0.0, 1.0);
//! let step = engine.decode_head(qt.row(0), kt.row(0), vt.row(0), &mut cache);
//! assert_eq!(step.len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod capability;
pub mod decode;
pub mod gqa;
pub mod head_select;
pub mod multilayer;
pub mod parallel;
pub mod prefill;
pub mod reference;
pub mod ring;
pub mod robust;
pub mod scratch;
pub mod splitk;

pub use api::{TurboAttention, TurboConfig};
pub use capability::{capability_table, Capability, TechniqueRow};
pub use decode::{
    splitk_wins, turbo_attend_cache, turbo_attend_cache_into, turbo_decode_head,
    turbo_decode_head_into, turbo_decode_step, turbo_decode_step_on, SPLITK_MIN_TOKENS,
};
pub use multilayer::{
    multilayer_episode_pipelined, multilayer_episode_pipelined_on, multilayer_episode_serialized,
    MultiLayerOutput,
};
pub use gqa::GqaLayout;
pub use head_select::{select_two_bit_heads, HeadStats, SelectionMethod};
pub use prefill::{turbo_prefill_head, turbo_prefill_head_pooled, PrefillOutput};
pub use reference::{flash_attention, flash_attention_f16, naive_attention, Masking};
pub use ring::{merge_shards, ring_prefill_exact, ring_prefill_turbo};
pub use robust::{AttnError, PrecisionLevel, RobustAttention, RobustHeadCache};
pub use scratch::Scratch;
pub use splitk::{turbo_attend_cache_splitk, turbo_attend_cache_splitk_on, PartialAttention};
