//! Exact attention references: naive and FlashAttention-tiled.
//!
//! Both compute `softmax(QKᵀ/√d)V` exactly (up to f32 rounding); the tiled
//! version exercises the online-softmax recurrence that Algorithm 1
//! quantizes, so agreement between the two validates the tiling machinery
//! independently of quantization.

use turbo_tensor::{matmul, matmul_transposed_b, Matrix};

/// Which keys a query may attend to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Masking {
    /// Autoregressive masking — the decoder-LLM setting of the paper.
    #[default]
    Causal,
    /// No masking (encoder-style), useful for kernel validation.
    Full,
    /// Causal with a sliding window of `w` keys: token `p` attends to
    /// `[p − w + 1, p]`. Phi-3's actual configuration (w = 2047).
    SlidingWindow(usize),
}

impl Masking {
    /// Whether queries are restricted to past positions.
    pub fn is_causal_like(self) -> bool {
        !matches!(self, Masking::Full)
    }

    /// Inclusive `[lo, hi]` key-index range visible to the query at
    /// absolute position `pos` in a sequence of `n_keys` keys.
    ///
    /// # Panics
    ///
    /// Panics if `n_keys == 0` or a sliding window of width 0 is used.
    pub fn visible_range(self, pos: usize, n_keys: usize) -> (usize, usize) {
        assert!(n_keys > 0, "empty key sequence");
        match self {
            Masking::Full => (0, n_keys - 1),
            Masking::Causal => (0, pos.min(n_keys - 1)),
            Masking::SlidingWindow(w) => {
                assert!(w > 0, "sliding window must be at least 1");
                let hi = pos.min(n_keys - 1);
                (hi.saturating_sub(w - 1), hi)
            }
        }
    }
}

/// Naive exact attention: materializes the full score matrix.
///
/// # Panics
///
/// Panics if `q`, `k`, `v` widths differ or `k`/`v` row counts differ, or
/// if causal masking is requested with more queries than keys (queries are
/// assumed to be the *last* `q.rows()` positions of the key sequence).
pub fn naive_attention(q: &Matrix, k: &Matrix, v: &Matrix, masking: Masking) -> Matrix {
    validate(q, k, v, masking);
    let d = q.cols();
    let scale = 1.0 / (d as f32).sqrt();
    let mut s = matmul_transposed_b(q, k);
    s.scale_in_place(scale);
    if masking.is_causal_like() {
        apply_mask(&mut s, k.rows(), masking);
    }
    let p = turbo_softmax::softmax(&s);
    matmul(&p, v)
}

/// Exact FlashAttention: tiled sweep with the online-softmax recurrence.
///
/// Returns the attention output; the logsumexp vector is exposed through
/// [`flash_attention_with_lse`].
///
/// # Panics
///
/// As [`naive_attention`], plus if `block_r == 0 || block_c == 0`.
pub fn flash_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    masking: Masking,
    block_r: usize,
    block_c: usize,
) -> Matrix {
    flash_attention_with_lse(q, k, v, masking, block_r, block_c).0
}

/// [`flash_attention`] also returning the per-row logsumexp `L = m + ln ℓ`.
pub fn flash_attention_with_lse(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    masking: Masking,
    block_r: usize,
    block_c: usize,
) -> (Matrix, Vec<f32>) {
    flash_attention_impl(q, k, v, masking, block_r, block_c, false)
}

/// FlashAttention with matmul inputs rounded through binary16 — the FP16
/// tensor-core baseline whose numerics TurboAttention is compared against.
pub fn flash_attention_f16(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    masking: Masking,
    block_r: usize,
    block_c: usize,
) -> Matrix {
    flash_attention_impl(q, k, v, masking, block_r, block_c, true).0
}

fn validate(q: &Matrix, k: &Matrix, v: &Matrix, masking: Masking) {
    assert_eq!(q.cols(), k.cols(), "Q/K width mismatch");
    assert_eq!(k.rows(), v.rows(), "K/V token mismatch");
    assert!(q.cols() > 0, "zero head dimension");
    assert!(k.rows() > 0, "empty key sequence");
    if masking.is_causal_like() {
        assert!(
            q.rows() <= k.rows(),
            "causal masking assumes queries are the last positions"
        );
    }
}

/// Masks `s[i][j] = -inf` outside the visible range of each query row,
/// where query row 0 sits at key position `n_keys - n_queries`.
fn apply_mask(s: &mut Matrix, n_keys: usize, masking: Masking) {
    let offset = n_keys - s.rows();
    for i in 0..s.rows() {
        let (lo, hi) = masking.visible_range(i + offset, n_keys);
        for j in 0..s.cols() {
            if j < lo || j > hi {
                s.set(i, j, f32::NEG_INFINITY);
            }
        }
    }
}

fn flash_attention_impl(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    masking: Masking,
    block_r: usize,
    block_c: usize,
    f16_matmul: bool,
) -> (Matrix, Vec<f32>) {
    validate(q, k, v, masking);
    assert!(block_r > 0 && block_c > 0, "block sizes must be positive");
    let d = q.cols();
    let scale = 1.0 / (d as f32).sqrt();
    let n_q = q.rows();
    let n_k = k.rows();
    let offset = if masking.is_causal_like() {
        n_k - n_q
    } else {
        0
    };

    let mut out = Matrix::zeros(n_q, d);
    let mut lse = vec![0.0f32; n_q];
    // Reusable tile buffers. Tiles are *views* into q/k/v via row slices —
    // nothing is copied per (q-block, k-block) pair, which is what made
    // this sweep slower than the naive kernel at prefill sizes.
    let mut s: Vec<f32> = Vec::new();
    let mut p: Vec<f32> = Vec::new();

    let mut qi = 0;
    while qi < n_q {
        let br = block_r.min(n_q - qi);
        let mut o = Matrix::zeros(br, d);
        let mut m = vec![f32::NEG_INFINITY; br];
        let mut l = vec![0.0f32; br];
        // The union of visible ranges over this query block.
        let (blk_lo, _) = masking.visible_range(qi + offset, n_k);
        let (_, blk_hi) = masking.visible_range(qi + br - 1 + offset, n_k);

        let mut kj = 0;
        while kj < n_k {
            let bc = block_c.min(n_k - kj);
            if masking.is_causal_like() {
                // Early-exit: the whole block is in the masked future.
                if kj > blk_hi {
                    break;
                }
                // Skip: the whole block is behind every row's window.
                if kj + bc <= blk_lo {
                    kj += bc;
                    continue;
                }
            }
            // Score tile straight from the source rows, in the same
            // accumulation order as the GEMM helpers (k-dim innermost,
            // scale applied after the dot product finishes).
            s.clear();
            s.resize(br * bc, 0.0);
            for i in 0..br {
                let q_row = q.row(qi + i);
                for (j, sv) in s[i * bc..(i + 1) * bc].iter_mut().enumerate() {
                    let k_row = k.row(kj + j);
                    let mut acc = 0.0f32;
                    if f16_matmul {
                        for (&a, &b) in q_row.iter().zip(k_row) {
                            acc += turbo_tensor::round_f16(a) * turbo_tensor::round_f16(b);
                        }
                    } else {
                        for (&a, &b) in q_row.iter().zip(k_row) {
                            acc += a * b;
                        }
                    }
                    *sv = acc * scale;
                }
            }
            if masking.is_causal_like() {
                for i in 0..br {
                    let (lo, hi) = masking.visible_range(qi + i + offset, n_k);
                    for (j, sv) in s[i * bc..(i + 1) * bc].iter_mut().enumerate() {
                        let key = kj + j;
                        if key < lo || key > hi {
                            *sv = f32::NEG_INFINITY;
                        }
                    }
                }
            }
            online_update(&mut o, &mut m, &mut l, &s, bc, v, kj, f16_matmul, &mut p);
            kj += bc;
        }

        for (i, (&li, &mi)) in l.iter().zip(m.iter()).enumerate() {
            assert!(li > 0.0, "row {} attended to nothing", qi + i);
            let inv = 1.0 / li;
            for c in 0..d {
                let val = o.get(i, c) * inv;
                o.set(i, c, val);
            }
            lse[qi + i] = mi + li.ln();
        }
        for i in 0..br {
            out.row_mut(qi + i).copy_from_slice(o.row(i));
        }
        qi += br;
    }
    (out, lse)
}

/// One online-softmax accumulation step shared by the exact kernels:
/// `m_new = max(m, rowmax(s))`, `p = exp(s − m_new)`,
/// `o = o·exp(m − m_new) + p·v`, `l = l·exp(m − m_new) + rowsum(p)`.
///
/// `s` is the flat `br × bc` score tile for keys `[kj, kj + bc)`; value
/// rows are read directly out of `v` and the probability row lives in the
/// caller's reusable `p` buffer.
#[allow(clippy::too_many_arguments)]
fn online_update(
    o: &mut Matrix,
    m: &mut [f32],
    l: &mut [f32],
    s: &[f32],
    bc: usize,
    v: &Matrix,
    kj: usize,
    f16_matmul: bool,
    p: &mut Vec<f32>,
) {
    let br = m.len();
    debug_assert_eq!(s.len(), br * bc, "score tile shape mismatch");
    for i in 0..br {
        let s_row = &s[i * bc..(i + 1) * bc];
        let row_max = s_row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let m_new = m[i].max(row_max);
        if m_new == f32::NEG_INFINITY {
            continue; // fully masked so far
        }
        let corr = if m[i] == f32::NEG_INFINITY {
            0.0
        } else {
            (m[i] - m_new).exp()
        };
        p.clear();
        p.resize(bc, 0.0);
        let mut row_sum = 0.0f32;
        for (pj, &sv) in p.iter_mut().zip(s_row) {
            *pj = if sv == f32::NEG_INFINITY {
                0.0
            } else {
                (sv - m_new).exp()
            };
            row_sum += *pj;
        }
        l[i] = l[i] * corr + row_sum;
        // `o[c] = o[c]·corr + Σⱼ p[j]·v[j][c]`: rescale first, then add the
        // j-terms in order — each output lane sees the exact accumulation
        // order of a j-innermost loop, but v is walked row-major.
        let o_row = o.row_mut(i);
        for oc in o_row.iter_mut() {
            *oc *= corr;
        }
        for (j, &pj) in p.iter().enumerate() {
            let v_row = v.row(kj + j);
            if f16_matmul {
                let pj16 = turbo_tensor::round_f16(pj);
                for (oc, &vv) in o_row.iter_mut().zip(v_row) {
                    *oc += pj16 * turbo_tensor::round_f16(vv);
                }
            } else {
                for (oc, &vv) in o_row.iter_mut().zip(v_row) {
                    *oc += pj * vv;
                }
            }
        }
        m[i] = m_new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::{max_abs_error, TensorRng};

    fn qkv(seed: u64, n: usize, d: usize) -> (Matrix, Matrix, Matrix) {
        let mut rng = TensorRng::new(seed);
        (
            rng.normal(n, d, 0.0, 1.0),
            rng.normal(n, d, 0.0, 1.0),
            rng.normal(n, d, 0.0, 1.0),
        )
    }

    #[test]
    fn flash_matches_naive_full() {
        let (q, k, v) = qkv(1, 50, 16);
        let a = naive_attention(&q, &k, &v, Masking::Full);
        let b = flash_attention(&q, &k, &v, Masking::Full, 16, 16);
        assert!(max_abs_error(&a, &b) < 1e-5);
    }

    #[test]
    fn flash_matches_naive_causal() {
        let (q, k, v) = qkv(2, 45, 8);
        let a = naive_attention(&q, &k, &v, Masking::Causal);
        let b = flash_attention(&q, &k, &v, Masking::Causal, 16, 8);
        assert!(max_abs_error(&a, &b) < 1e-5);
    }

    #[test]
    fn block_size_does_not_change_result() {
        let (q, k, v) = qkv(3, 64, 8);
        let base = flash_attention(&q, &k, &v, Masking::Causal, 64, 64);
        for (br, bc) in [(1, 1), (7, 13), (16, 64), (64, 16), (128, 128)] {
            let other = flash_attention(&q, &k, &v, Masking::Causal, br, bc);
            assert!(
                max_abs_error(&base, &other) < 1e-5,
                "blocks ({br},{bc}) diverged"
            );
        }
    }

    #[test]
    fn causal_first_token_attends_only_itself() {
        let (q, k, v) = qkv(4, 10, 4);
        let out = naive_attention(&q, &k, &v, Masking::Causal);
        // Row 0 can only see key 0, so its output is exactly v[0].
        for c in 0..4 {
            assert!((out.get(0, c) - v.get(0, c)).abs() < 1e-6);
        }
    }

    #[test]
    fn decode_query_aligned_to_sequence_tail() {
        // One query against 20 keys: causal offset makes it see everything.
        let mut rng = TensorRng::new(5);
        let q = rng.normal(1, 8, 0.0, 1.0);
        let k = rng.normal(20, 8, 0.0, 1.0);
        let v = rng.normal(20, 8, 0.0, 1.0);
        let causal = naive_attention(&q, &k, &v, Masking::Causal);
        let full = naive_attention(&q, &k, &v, Masking::Full);
        assert!(max_abs_error(&causal, &full) < 1e-6);
    }

    #[test]
    fn lse_is_consistent_with_probabilities() {
        let (q, k, v) = qkv(6, 24, 8);
        let (_, lse) = flash_attention_with_lse(&q, &k, &v, Masking::Full, 8, 8);
        // Recompute lse densely.
        let scale = 1.0 / (8f32).sqrt();
        let mut s = matmul_transposed_b(&q, &k);
        s.scale_in_place(scale);
        for (i, &l) in lse.iter().enumerate() {
            let max = s.row(i).iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let sum: f32 = s.row(i).iter().map(|&x| (x - max).exp()).sum();
            assert!((l - (max + sum.ln())).abs() < 1e-4);
        }
    }

    #[test]
    fn f16_flash_close_to_f32() {
        let (q, k, v) = qkv(7, 40, 16);
        let exact = flash_attention(&q, &k, &v, Masking::Causal, 16, 16);
        let half = flash_attention_f16(&q, &k, &v, Masking::Causal, 16, 16);
        assert!(max_abs_error(&exact, &half) < 5e-3);
        // And not bit-identical (f16 rounding must actually bite).
        assert!(max_abs_error(&exact, &half) > 0.0);
    }

    #[test]
    fn attention_rows_are_convex_combinations() {
        let (q, k, v) = qkv(8, 30, 4);
        let out = naive_attention(&q, &k, &v, Masking::Causal);
        let vmin = v.min();
        let vmax = v.max();
        for &x in out.as_slice() {
            assert!(x >= vmin - 1e-5 && x <= vmax + 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_width_panics() {
        let q = Matrix::zeros(2, 4);
        let k = Matrix::zeros(2, 8);
        naive_attention(&q, &k, &k, Masking::Full);
    }

    #[test]
    #[should_panic(expected = "last positions")]
    fn causal_more_queries_than_keys_panics() {
        let q = Matrix::zeros(4, 2);
        let k = Matrix::zeros(2, 2);
        naive_attention(&q, &k, &k, Masking::Causal);
    }
}

#[cfg(test)]
mod sliding_window_tests {
    use super::*;
    use turbo_tensor::{max_abs_error, TensorRng};

    fn qkv(seed: u64, n: usize, d: usize) -> (Matrix, Matrix, Matrix) {
        let mut rng = TensorRng::new(seed);
        (
            rng.normal(n, d, 0.0, 1.0),
            rng.normal(n, d, 0.0, 1.0),
            rng.normal(n, d, 0.0, 1.0),
        )
    }

    #[test]
    fn visible_range_math() {
        assert_eq!(Masking::Full.visible_range(3, 10), (0, 9));
        assert_eq!(Masking::Causal.visible_range(3, 10), (0, 3));
        assert_eq!(Masking::SlidingWindow(4).visible_range(9, 10), (6, 9));
        assert_eq!(Masking::SlidingWindow(4).visible_range(2, 10), (0, 2));
        assert_eq!(Masking::SlidingWindow(1).visible_range(5, 10), (5, 5));
    }

    #[test]
    fn window_flash_matches_naive() {
        let (q, k, v) = qkv(11, 50, 8);
        for w in [1usize, 4, 16, 100] {
            let a = naive_attention(&q, &k, &v, Masking::SlidingWindow(w));
            let b = flash_attention(&q, &k, &v, Masking::SlidingWindow(w), 8, 8);
            assert!(max_abs_error(&a, &b) < 1e-5, "window {w}");
        }
    }

    #[test]
    fn huge_window_equals_causal() {
        let (q, k, v) = qkv(12, 30, 8);
        let win = naive_attention(&q, &k, &v, Masking::SlidingWindow(1000));
        let causal = naive_attention(&q, &k, &v, Masking::Causal);
        assert!(max_abs_error(&win, &causal) < 1e-6);
    }

    #[test]
    fn window_one_returns_own_value() {
        let (q, k, v) = qkv(13, 12, 4);
        let out = naive_attention(&q, &k, &v, Masking::SlidingWindow(1));
        assert!(max_abs_error(&out, &v) < 1e-6);
    }

    #[test]
    fn window_blocks_are_skipped_not_wrong() {
        // Block-level skip must not change results vs blockless evaluation.
        let (q, k, v) = qkv(14, 64, 8);
        let base = flash_attention(&q, &k, &v, Masking::SlidingWindow(7), 64, 64);
        for (br, bc) in [(4usize, 4usize), (16, 8), (8, 32)] {
            let tiled = flash_attention(&q, &k, &v, Masking::SlidingWindow(7), br, bc);
            assert!(max_abs_error(&base, &tiled) < 1e-5, "blocks {br}x{bc}");
        }
    }
}
