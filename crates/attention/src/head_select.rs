//! Head-wise mixed precision: choosing which heads get 2-bit KV caches.
//!
//! Section 3.2 ranks heads by `priority = gap × std` where `gap` is the
//! overall value range of the head's key/value activations and `std` is
//! the standard deviation of the per-channel ranges. The `n_h` lowest-
//! priority heads are compressed to INT2; the rest stay INT4.
//!
//! Figure 7b ablates this metric against three simpler selectors —
//! entropy, min-max, and variation — all implemented here.

use turbo_quant::BitWidth;
use turbo_tensor::{col_max_min, Matrix};

/// Per-head statistics backing all selection metrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeadStats {
    /// Overall `max − min` across every element of the head (Equation 11's
    /// `gap`).
    pub gap: f32,
    /// Standard deviation of the per-channel `max − min` gaps (Equation
    /// 11's `std`).
    pub channel_gap_std: f32,
    /// Shannon entropy (bits) of a 64-bin histogram of the head's values.
    pub entropy: f32,
}

impl HeadStats {
    /// Computes statistics from a head's activation matrix
    /// (`tokens × channels`), typically the key cache of a calibration
    /// batch.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty.
    pub fn from_activations(m: &Matrix) -> Self {
        assert!(!m.is_empty(), "empty activation matrix");
        let ranges = col_max_min(m);
        let channel_gaps: Vec<f32> = ranges.iter().map(|(mx, mn)| mx - mn).collect();
        let gap = m.max() - m.min();
        let mean = channel_gaps.iter().sum::<f32>() / channel_gaps.len() as f32;
        let var = channel_gaps
            .iter()
            .map(|g| (g - mean) * (g - mean))
            .sum::<f32>()
            / channel_gaps.len() as f32;
        HeadStats {
            gap,
            channel_gap_std: var.sqrt(),
            entropy: histogram_entropy(m, 64),
        }
    }

    /// The paper's priority score `gap × std` (Equation 11). Higher means
    /// more quantization-sensitive — keep at 4-bit.
    pub fn priority(&self) -> f32 {
        self.gap * self.channel_gap_std
    }
}

/// Shannon entropy in bits of an equi-width histogram of `m`'s values.
fn histogram_entropy(m: &Matrix, bins: usize) -> f32 {
    let min = m.min();
    let max = m.max();
    if max == min {
        return 0.0;
    }
    let mut counts = vec![0usize; bins];
    let width = (max - min) / bins as f32;
    for &x in m.as_slice() {
        let b = (((x - min) / width) as usize).min(bins - 1);
        counts[b] += 1;
    }
    let n = m.len() as f32;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f32 / n;
            -p * p.log2()
        })
        .sum()
}

/// Head-selection strategies compared in Figure 7b.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SelectionMethod {
    /// The paper's `gap × std` metric (Equation 11).
    Priority,
    /// Histogram entropy of the head's values (lower entropy → 2-bit).
    Entropy,
    /// Overall min-max range (smaller range → 2-bit).
    MinMax,
    /// Standard deviation of channel-wise ranges (lower variation → 2-bit).
    Variation,
}

impl SelectionMethod {
    /// All methods, in the order Figure 7b plots them.
    pub const ALL: [SelectionMethod; 4] = [
        SelectionMethod::Priority,
        SelectionMethod::Entropy,
        SelectionMethod::MinMax,
        SelectionMethod::Variation,
    ];

    /// The scalar score this method assigns a head; heads with the
    /// *lowest* scores are demoted to 2-bit.
    pub fn score(self, stats: &HeadStats) -> f32 {
        match self {
            SelectionMethod::Priority => stats.priority(),
            SelectionMethod::Entropy => stats.entropy,
            SelectionMethod::MinMax => stats.gap,
            SelectionMethod::Variation => stats.channel_gap_std,
        }
    }
}

impl std::fmt::Display for SelectionMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SelectionMethod::Priority => "Priority",
            SelectionMethod::Entropy => "Entropy",
            SelectionMethod::MinMax => "Min-Max",
            SelectionMethod::Variation => "Variation",
        };
        write!(f, "{name}")
    }
}

/// Assigns a bit width to each head: the `n_two_bit` lowest-scoring heads
/// get INT2, the rest INT4 (Equation 12).
///
/// Ties are broken by head index (stable sort), matching a deterministic
/// kernel implementation.
///
/// # Panics
///
/// Panics if `n_two_bit > stats.len()`.
pub fn select_two_bit_heads(
    stats: &[HeadStats],
    n_two_bit: usize,
    method: SelectionMethod,
) -> Vec<BitWidth> {
    assert!(
        n_two_bit <= stats.len(),
        "cannot demote {n_two_bit} of {} heads",
        stats.len()
    );
    let mut order: Vec<usize> = (0..stats.len()).collect();
    order.sort_by(|&a, &b| {
        method
            .score(&stats[a])
            .partial_cmp(&method.score(&stats[b]))
            .expect("non-finite head score")
    });
    let mut bits = vec![BitWidth::Int4; stats.len()];
    for &h in order.iter().take(n_two_bit) {
        bits[h] = BitWidth::Int2;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::TensorRng;

    fn outlier_head(seed: u64, scale: f32) -> Matrix {
        TensorRng::new(seed).normal_with_channel_outliers(128, 16, 1.0, &[2, 9], scale)
    }

    #[test]
    fn stats_of_uniform_head_have_small_std() {
        let m = TensorRng::new(1).normal(128, 16, 0.0, 1.0);
        let s = HeadStats::from_activations(&m);
        assert!(s.gap > 0.0);
        // Channel gaps are all similar -> std much smaller than the gap.
        assert!(s.channel_gap_std < s.gap * 0.25);
    }

    #[test]
    fn outlier_head_scores_higher_priority() {
        let plain = HeadStats::from_activations(&TensorRng::new(2).normal(128, 16, 0.0, 1.0));
        let spiky = HeadStats::from_activations(&outlier_head(3, 20.0));
        assert!(spiky.priority() > 10.0 * plain.priority());
    }

    #[test]
    fn priority_selects_plain_heads_for_two_bit() {
        let heads = vec![
            HeadStats::from_activations(&outlier_head(4, 25.0)),
            HeadStats::from_activations(&TensorRng::new(5).normal(128, 16, 0.0, 1.0)),
            HeadStats::from_activations(&outlier_head(6, 15.0)),
            HeadStats::from_activations(&TensorRng::new(7).normal(128, 16, 0.0, 1.0)),
        ];
        let bits = select_two_bit_heads(&heads, 2, SelectionMethod::Priority);
        assert_eq!(
            bits,
            vec![
                BitWidth::Int4,
                BitWidth::Int2,
                BitWidth::Int4,
                BitWidth::Int2
            ]
        );
    }

    #[test]
    fn zero_and_all_demotion_extremes() {
        let heads =
            vec![HeadStats::from_activations(&TensorRng::new(8).normal(16, 8, 0.0, 1.0)); 4];
        assert!(select_two_bit_heads(&heads, 0, SelectionMethod::Priority)
            .iter()
            .all(|&b| b == BitWidth::Int4));
        assert!(select_two_bit_heads(&heads, 4, SelectionMethod::Priority)
            .iter()
            .all(|&b| b == BitWidth::Int2));
    }

    #[test]
    fn methods_can_disagree() {
        // A head with a huge but *uniform* range: large gap, small std.
        let wide = TensorRng::new(9).normal(256, 16, 0.0, 30.0);
        // A head with a single extreme outlier channel: large std.
        let spiky = outlier_head(10, 30.0);
        let stats = vec![
            HeadStats::from_activations(&wide),
            HeadStats::from_activations(&spiky),
        ];
        let by_minmax = select_two_bit_heads(&stats, 1, SelectionMethod::MinMax);
        let by_variation = select_two_bit_heads(&stats, 1, SelectionMethod::Variation);
        // Min-max demotes the spiky head (smaller overall range); variation
        // demotes the wide head (smaller channel-gap spread).
        assert_eq!(by_minmax[1], BitWidth::Int2);
        assert_eq!(by_variation[0], BitWidth::Int2);
    }

    #[test]
    fn entropy_of_constant_matrix_is_zero() {
        let m = Matrix::filled(8, 8, 3.0);
        let s = HeadStats::from_activations(&m);
        assert_eq!(s.entropy, 0.0);
        assert_eq!(s.gap, 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot demote")]
    fn demoting_too_many_panics() {
        let heads = vec![HeadStats::from_activations(&Matrix::filled(2, 2, 1.0))];
        select_two_bit_heads(&heads, 2, SelectionMethod::Priority);
    }
}
