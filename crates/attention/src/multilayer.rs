//! Multi-layer episodes over a durable layer set, serialized or pipelined.
//!
//! A toy-but-complete L-layer transformer-shaped workload: each layer
//! projects its input into per-head q/k/v rows (a fixed rotation +
//! per-head gain — cheap, deterministic, and layer-distinct), appends k/v
//! to that layer's quantized cache, and attends with the fused integer
//! decode kernel. Layer `l`'s output is layer `l+1`'s input; the final
//! layer's output is the episode's output for that token. Decode inputs
//! are teacher-forced (each step's layer-0 input comes from the caller,
//! not the previous output), which keeps magnitudes bounded and makes
//! every token's compute independent of scheduling.
//!
//! Both engines below express the episode as the **same**
//! [`LayerPipeline`] DAG — built once, executed either serially in task
//! order ([`multilayer_episode_serialized`]) or with maximal overlap on
//! the pool ([`multilayer_episode_pipelined_on`]). Dependencies:
//!
//! * prefill chunk `(l, c)` needs `(l, c−1)` (per-layer token order) and
//!   `(l−1, c)` (its inputs) — so layer `k+1`'s prefill overlaps layer
//!   `k`'s later chunks along the pipeline diagonal;
//! * decode step `(l, i)` needs `(l, i−1)` (or layer `l`'s last prefill
//!   chunk) and `(l−1, i)`;
//! * WAL commits join at the **token boundary**: one task per prefill
//!   chunk / decode token, dependent on the *last* layer's compute for
//!   those tokens (hence transitively on every layer's), chained in token
//!   order, emitting exactly one atomic group-commit record per token via
//!   [`DurableLayerSet::commit_pipelined_token`];
//! * a final checkpoint-class task is the sync barrier.
//!
//! Because every task writes its own slot and reads only slots its
//! dependencies wrote, and per-cell append/attend sequences are fixed by
//! the DAG edges, the pipelined run is **bit-identical** to the
//! serialized one — outputs, cache state, and WAL bytes — at any worker
//! count.

use std::ops::Range;
use std::sync::Mutex;

use crate::decode::turbo_attend_cache;
use turbo_kvcache::{DurableLayerSet, LayerKvCache};
use turbo_robust::HealthStats;
use turbo_runtime::{LayerPipeline, PipelineStats, Runtime, TaskId, WorkClass};
use turbo_softmax::Sas;
use turbo_tensor::Matrix;

/// Result of one multi-layer episode.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiLayerOutput {
    /// Final layer's attention output per token, prompt tokens first,
    /// then decode steps. Each row is `heads × d` wide.
    pub outputs: Vec<Vec<f32>>,
    /// Pipeline execution statistics (`peak_in_flight == 1` for the
    /// serialized engine by construction).
    pub stats: PipelineStats,
}

/// Deterministic per-head projection of a layer input: a rotation of the
/// head's segment plus a layer/head/role-specific gain. `role` is
/// 0 = query, 1 = key, 2 = value.
fn project(x: &[f32], d: usize, h: usize, l: usize, role: usize) -> Vec<f32> {
    let seg = &x[h * d..(h + 1) * d];
    let rot = (l * 3 + role) % d;
    let gain = 0.9 + 0.01 * l as f32 + 0.003 * h as f32 + 0.02 * role as f32;
    (0..d).map(|i| seg[(i + rot) % d] * gain).collect()
}

/// One token through one layer: per head, project q/k/v, append k/v to
/// the layer's cache, attend over it. Returns the concatenated head
/// outputs plus the appended rows (the WAL commit needs them verbatim).
#[allow(clippy::type_complexity)]
fn layer_token_step(
    cell: &mut LayerKvCache,
    sas: &Sas,
    x: &[f32],
    l: usize,
    d: usize,
) -> (Vec<f32>, Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let heads = cell.num_heads();
    let mut y = Vec::with_capacity(heads * d);
    let mut ks = Vec::with_capacity(heads);
    let mut vs = Vec::with_capacity(heads);
    for h in 0..heads {
        let q = project(x, d, h, l, 0);
        let k = project(x, d, h, l, 1);
        let v = project(x, d, h, l, 2);
        let head = cell.head_mut(h);
        head.append(&k, &v);
        y.extend_from_slice(&turbo_attend_cache(&q, head, sas));
        ks.push(k);
        vs.push(v);
    }
    (y, ks, vs)
}

/// Shared episode state the pipeline tasks communicate through. Every
/// slot has exactly one writer (fixed by the DAG), so the mutexes are
/// uncontended by construction — they exist to satisfy `Sync`, not to
/// arbitrate.
#[allow(clippy::type_complexity)]
struct EpisodeState<'s> {
    /// Per-layer caches detached from the durable set; per-layer token
    /// order serializes access via the chunk/step dependency chains.
    cells: Vec<Mutex<LayerKvCache>>,
    /// `outs[l][t]`: layer `l`'s output for token `t`.
    outs: Vec<Vec<Mutex<Option<Vec<f32>>>>>,
    /// `rows[l][t]`: the k/v rows layer `l` appended for token `t`,
    /// retained until the token's WAL commit consumes them.
    rows: Vec<Vec<Mutex<Option<(Vec<Vec<f32>>, Vec<Vec<f32>>)>>>>,
    /// Sole custodian of the WAL while the caches are detached; commit
    /// tasks are fully chained, so this lock is uncontended too.
    committer: Mutex<&'s mut DurableLayerSet>,
}

impl EpisodeState<'_> {
    /// Commits token `t`'s group record: one atomic WAL record spanning
    /// every layer × head, in layer-major cell order — byte-identical to
    /// what `try_append_token` would have emitted.
    fn commit_token(&self, t: usize, layers: usize, heads: usize, health: Option<&HealthStats>) {
        let guards: Vec<_> = (0..layers)
            .map(|l| self.rows[l][t].lock().expect("row slot poisoned"))
            .collect();
        let mut ks: Vec<&[f32]> = Vec::with_capacity(layers * heads);
        let mut vs: Vec<&[f32]> = Vec::with_capacity(layers * heads);
        for g in &guards {
            let (k_rows, v_rows) = g.as_ref().expect("token rows missing at commit");
            for h in 0..heads {
                ks.push(&k_rows[h]);
                vs.push(&v_rows[h]);
            }
        }
        self.committer
            .lock()
            .expect("committer poisoned")
            .commit_pipelined_token(&ks, &vs, health)
            .expect("pipelined commit rejected rows the engine computed");
    }
}

/// How to execute the episode DAG.
enum Mode<'r> {
    Serial,
    Pipelined(&'r Runtime),
}

/// Runs one multi-layer episode against `set`: prefills `prompt` (in
/// chunks of `prefill_chunk` tokens), then decodes `decode.rows()` steps,
/// committing one WAL record per token and syncing at the end.
fn run_episode(
    mode: Mode<'_>,
    set: &mut DurableLayerSet,
    prompt: &Matrix,
    decode: &Matrix,
    sas: &Sas,
    prefill_chunk: usize,
    health: Option<&HealthStats>,
) -> MultiLayerOutput {
    let layers = set.num_layers();
    let heads = set.heads_per_layer();
    let d = set.head_dim();
    let width = heads * d;
    assert!(prefill_chunk > 0, "prefill chunk must be positive");
    assert!(prompt.rows() > 0, "episode needs at least one prompt token");
    assert_eq!(prompt.cols(), width, "prompt width must be heads × d");
    if decode.rows() > 0 {
        assert_eq!(decode.cols(), width, "decode width must be heads × d");
    }
    let p = prompt.rows();
    let n_dec = decode.rows();
    let total = p + n_dec;

    let st = EpisodeState {
        cells: set
            .take_layers_for_pipeline()
            .into_iter()
            .map(Mutex::new)
            .collect(),
        outs: (0..layers)
            .map(|_| (0..total).map(|_| Mutex::new(None)).collect())
            .collect(),
        rows: (0..layers)
            .map(|_| (0..total).map(|_| Mutex::new(None)).collect())
            .collect(),
        committer: Mutex::new(&mut *set),
    };

    let chunks: Vec<Range<usize>> = (0..p)
        .step_by(prefill_chunk)
        .map(|lo| lo..(lo + prefill_chunk).min(p))
        .collect();

    let mut pipe = LayerPipeline::new();

    // --- prefill compute: chunk (l, c) --------------------------------
    let mut prefill_ids: Vec<Vec<TaskId>> = Vec::with_capacity(layers);
    for l in 0..layers {
        let mut layer_ids: Vec<TaskId> = Vec::with_capacity(chunks.len());
        for (c, range) in chunks.iter().enumerate() {
            let mut deps = Vec::new();
            if c > 0 {
                deps.push(layer_ids[c - 1]);
            }
            if l > 0 {
                deps.push(prefill_ids[l - 1][c]);
            }
            let st = &st;
            let range = range.clone();
            let id = pipe.task(WorkClass::PrefillChunk, l, &deps, move || {
                let mut cell = st.cells[l].lock().expect("cell poisoned");
                for t in range.clone() {
                    let input;
                    let x: &[f32] = if l == 0 {
                        prompt.row(t)
                    } else {
                        input = st.outs[l - 1][t].lock().expect("out slot poisoned");
                        input.as_ref().expect("layer input missing").as_slice()
                    };
                    let (y, ks, vs) = layer_token_step(&mut cell, sas, x, l, d);
                    *st.outs[l][t].lock().expect("out slot poisoned") = Some(y);
                    *st.rows[l][t].lock().expect("row slot poisoned") = Some((ks, vs));
                }
            });
            layer_ids.push(id);
        }
        prefill_ids.push(layer_ids);
    }

    // --- prefill WAL commits: one task per chunk, one record per token,
    //     joined at the last layer (the token boundary), chained --------
    let mut wal_prev: Option<TaskId> = None;
    for (c, range) in chunks.iter().enumerate() {
        let mut deps = vec![prefill_ids[layers - 1][c]];
        if let Some(prev) = wal_prev {
            deps.push(prev);
        }
        let st = &st;
        let range = range.clone();
        wal_prev = Some(pipe.task(WorkClass::WalCommit, layers - 1, &deps, move || {
            for t in range.clone() {
                st.commit_token(t, layers, heads, health);
            }
        }));
    }

    // --- decode: step (l, i), then the token's WAL commit --------------
    let mut dec_prev_in_layer: Vec<TaskId> =
        (0..layers).map(|l| prefill_ids[l][chunks.len() - 1]).collect();
    for i in 0..n_dec {
        let mut prev_layer_step: Option<TaskId> = None;
        for (l, prev_in_layer) in dec_prev_in_layer.iter_mut().enumerate() {
            let mut deps = vec![*prev_in_layer];
            if let Some(below) = prev_layer_step {
                deps.push(below);
            }
            let st = &st;
            let t = p + i;
            let id = pipe.task(WorkClass::DecodeStep, l, &deps, move || {
                let mut cell = st.cells[l].lock().expect("cell poisoned");
                let input;
                let x: &[f32] = if l == 0 {
                    decode.row(i)
                } else {
                    input = st.outs[l - 1][t].lock().expect("out slot poisoned");
                    input.as_ref().expect("layer input missing").as_slice()
                };
                let (y, ks, vs) = layer_token_step(&mut cell, sas, x, l, d);
                *st.outs[l][t].lock().expect("out slot poisoned") = Some(y);
                *st.rows[l][t].lock().expect("row slot poisoned") = Some((ks, vs));
            });
            *prev_in_layer = id;
            prev_layer_step = Some(id);
        }
        let mut deps = vec![dec_prev_in_layer[layers - 1]];
        if let Some(prev) = wal_prev {
            deps.push(prev);
        }
        let st = &st;
        let t = p + i;
        wal_prev = Some(pipe.task(WorkClass::WalCommit, layers - 1, &deps, move || {
            st.commit_token(t, layers, heads, health);
        }));
    }

    // --- final durability barrier --------------------------------------
    {
        let deps: Vec<TaskId> = wal_prev.into_iter().collect();
        let st = &st;
        pipe.task(WorkClass::Checkpoint, layers - 1, &deps, move || {
            st.committer.lock().expect("committer poisoned").sync_wal();
        });
    }

    let stats = match mode {
        Mode::Serial => pipe.run_serial(),
        Mode::Pipelined(rt) => pipe.run_on(rt),
    };

    // Destructuring releases the committer's `&mut set` borrow so the
    // advanced cells can be reattached below.
    let EpisodeState {
        cells,
        mut outs,
        rows: _,
        committer: _,
    } = st;
    let advanced: Vec<LayerKvCache> = cells
        .into_iter()
        .map(|m| m.into_inner().expect("cell poisoned"))
        .collect();
    set.restore_layers_from_pipeline(advanced, health);

    let outputs: Vec<Vec<f32>> = outs
        .pop()
        .expect("at least one layer")
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("out slot poisoned")
                .expect("episode left a token uncomputed")
        })
        .collect();
    MultiLayerOutput { outputs, stats }
}

/// Serialized reference engine: executes the episode DAG in task order on
/// the calling thread. This is the bit-identity baseline the pipelined
/// engine is measured against.
pub fn multilayer_episode_serialized(
    set: &mut DurableLayerSet,
    prompt: &Matrix,
    decode: &Matrix,
    sas: &Sas,
    prefill_chunk: usize,
    health: Option<&HealthStats>,
) -> MultiLayerOutput {
    run_episode(Mode::Serial, set, prompt, decode, sas, prefill_chunk, health)
}

/// Pipelined engine on an explicit runtime: the same DAG released to the
/// pool with maximal overlap. Bit-identical to
/// [`multilayer_episode_serialized`] — outputs, cache state, WAL bytes —
/// at any worker count.
pub fn multilayer_episode_pipelined_on(
    rt: &Runtime,
    set: &mut DurableLayerSet,
    prompt: &Matrix,
    decode: &Matrix,
    sas: &Sas,
    prefill_chunk: usize,
    health: Option<&HealthStats>,
) -> MultiLayerOutput {
    run_episode(
        Mode::Pipelined(rt),
        set,
        prompt,
        decode,
        sas,
        prefill_chunk,
        health,
    )
}

/// As [`multilayer_episode_pipelined_on`], on the global runtime.
pub fn multilayer_episode_pipelined(
    set: &mut DurableLayerSet,
    prompt: &Matrix,
    decode: &Matrix,
    sas: &Sas,
    prefill_chunk: usize,
    health: Option<&HealthStats>,
) -> MultiLayerOutput {
    multilayer_episode_pipelined_on(
        turbo_runtime::global(),
        set,
        prompt,
        decode,
        sas,
        prefill_chunk,
        health,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_kvcache::{KvCacheConfig, NeverCheckpoint};
    use turbo_quant::BitWidth;
    use turbo_tensor::TensorRng;

    const LAYERS: usize = 4;
    const HEADS: usize = 3;
    const D: usize = 8;

    fn fresh_set(flush_every: usize) -> DurableLayerSet {
        let mut set = DurableLayerSet::new(
            LAYERS,
            HEADS,
            D,
            KvCacheConfig {
                bits: BitWidth::Int4,
                group_size: 8,
                buffer_capacity: 16,
            },
            Box::new(NeverCheckpoint),
        );
        set.set_flush_every_n_tokens(flush_every);
        set
    }

    fn episode_data(seed: u64, p: usize, n_dec: usize) -> (Matrix, Matrix) {
        let mut rng = TensorRng::new(seed);
        (
            rng.normal(p, HEADS * D, 0.0, 1.0),
            rng.normal(n_dec, HEADS * D, 0.0, 1.0),
        )
    }

    fn assert_sets_identical(a: &DurableLayerSet, b: &DurableLayerSet) {
        assert_eq!(a.tokens(), b.tokens());
        assert_eq!(a.wal().as_bytes(), b.wal().as_bytes(), "WAL bytes diverged");
        for l in 0..a.num_layers() {
            for h in 0..a.heads_per_layer() {
                assert_eq!(
                    a.layer(l).head(h).to_bytes(),
                    b.layer(l).head(h).to_bytes(),
                    "cell ({l}, {h}) diverged"
                );
            }
        }
    }

    #[test]
    fn pipelined_is_bit_identical_to_serialized_at_1_2_8_workers() {
        let (prompt, decode) = episode_data(901, 19, 7);
        let sas = Sas::paper_default();
        let mut ref_set = fresh_set(3);
        let reference =
            multilayer_episode_serialized(&mut ref_set, &prompt, &decode, &sas, 5, None);
        assert_eq!(reference.outputs.len(), 19 + 7);
        assert_eq!(reference.stats.peak_in_flight, 1);
        for workers in [1usize, 2, 8] {
            let rt = Runtime::with_workers(workers);
            let mut set = fresh_set(3);
            let out =
                multilayer_episode_pipelined_on(&rt, &mut set, &prompt, &decode, &sas, 5, None);
            assert_eq!(out.outputs, reference.outputs, "workers = {workers}");
            assert_sets_identical(&set, &ref_set);
            assert_eq!(out.stats.tasks, reference.stats.tasks);
            assert_eq!(out.stats.runs_per_class, reference.stats.runs_per_class);
        }
    }

    #[test]
    fn episode_emits_one_wal_record_per_token() {
        let (prompt, decode) = episode_data(902, 10, 4);
        let sas = Sas::paper_default();
        let mut set = fresh_set(1);
        multilayer_episode_serialized(&mut set, &prompt, &decode, &sas, 4, None);
        assert_eq!(set.wal().appends(), 14, "one group record per token");
        assert_eq!(set.tokens(), 14);
        assert_eq!(set.stats().group_commits, 14);
    }

    #[test]
    fn pipeline_overlaps_independent_layer_work() {
        let (prompt, decode) = episode_data(903, 24, 8);
        let sas = Sas::paper_default();
        let rt = Runtime::with_workers(4);
        let mut set = fresh_set(4);
        let out = multilayer_episode_pipelined_on(&rt, &mut set, &prompt, &decode, &sas, 4, None);
        // Structural overlap: with 4 workers and a 4-layer DAG, at least
        // two tasks must have been in flight at once at some point.
        assert!(
            out.stats.peak_in_flight >= 2,
            "pipeline never overlapped (peak {})",
            out.stats.peak_in_flight
        );
        // Work-class census: L × chunks prefill, L × dec decode, one WAL
        // task per chunk + per decode token, one sync barrier.
        let chunks = 24usize.div_ceil(4);
        assert_eq!(
            out.stats.runs_per_class,
            [LAYERS * chunks, LAYERS * 8, chunks + 8, 1]
        );
    }

    #[test]
    fn flush_cadence_is_respected_across_engines() {
        let (prompt, decode) = episode_data(904, 9, 5);
        let sas = Sas::paper_default();
        for flush_every in [1usize, 4, 13] {
            let mut a = fresh_set(flush_every);
            let mut b = fresh_set(flush_every);
            multilayer_episode_serialized(&mut a, &prompt, &decode, &sas, 3, None);
            let rt = Runtime::with_workers(2);
            multilayer_episode_pipelined_on(&rt, &mut b, &prompt, &decode, &sas, 3, None);
            assert_eq!(
                a.durable_state(),
                b.durable_state(),
                "flush_every = {flush_every}"
            );
            assert_eq!(a.stats().wal_syncs, b.stats().wal_syncs);
        }
    }

    #[test]
    fn ragged_chunks_and_single_layer_edge_cases() {
        let sas = Sas::paper_default();
        // Chunk bigger than the prompt; no decode steps at all.
        let (prompt, _) = episode_data(905, 5, 0);
        let decode = Matrix::zeros(0, HEADS * D);
        let mut a = fresh_set(1);
        let mut b = fresh_set(1);
        let ra = multilayer_episode_serialized(&mut a, &prompt, &decode, &sas, 64, None);
        let rt = Runtime::with_workers(2);
        let rb = multilayer_episode_pipelined_on(&rt, &mut b, &prompt, &decode, &sas, 64, None);
        assert_eq!(ra.outputs, rb.outputs);
        assert_sets_identical(&a, &b);
        assert_eq!(a.tokens(), 5);
    }
}
