//! The Table 1 technique-capability matrix, as queryable data.
//!
//! Table 1 positions TurboAttention against prior work along five axes;
//! encoding it as data lets the figure generator print the table and lets
//! tests assert the claimed relationships (e.g. only TurboAttention both
//! compresses the KV cache *and* executes attention quantized).

use std::fmt;

/// How a technique treats one component of the inference stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Capability {
    /// Component untouched (runs at full precision / stock kernel).
    None,
    /// Component is quantized.
    Quantized,
    /// Component uses a FlashAttention-style fused kernel.
    Flash,
    /// Component uses a fused kernel *and* quantized execution.
    FlashQuantized,
    /// Component is compressed (storage only, dequantized for compute).
    Compressed,
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Capability::None => "-",
            Capability::Quantized => "Quantized",
            Capability::Flash => "Flash",
            Capability::FlashQuantized => "Flash + Quantized",
            Capability::Compressed => "Compressed",
        };
        write!(f, "{s}")
    }
}

/// One row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TechniqueRow {
    /// Technique name as printed in the paper.
    pub name: &'static str,
    /// QKV projection treatment.
    pub qkv_projection: Capability,
    /// Whether the KV cache is compressed.
    pub kv_cache_compression: bool,
    /// Attention-execution treatment.
    pub attention_execution: Capability,
    /// MLP treatment.
    pub mlp: Capability,
    /// Relative memory-overhead arrows (0 = none, 1 = ↓, 2 = ↓↓).
    pub memory_reduction: u8,
    /// Relative inference-latency arrows (0 = none, 1 = ↓, 2 = ↓↓).
    pub latency_reduction: u8,
}

/// Returns Table 1 verbatim.
pub fn capability_table() -> Vec<TechniqueRow> {
    use Capability::*;
    vec![
        TechniqueRow {
            name: "ATOM",
            qkv_projection: Quantized,
            kv_cache_compression: true,
            attention_execution: None,
            mlp: Quantized,
            memory_reduction: 1,
            latency_reduction: 1,
        },
        TechniqueRow {
            name: "QuaRot",
            qkv_projection: Quantized,
            kv_cache_compression: true,
            attention_execution: None,
            mlp: Quantized,
            memory_reduction: 1,
            latency_reduction: 1,
        },
        TechniqueRow {
            name: "Qserve",
            qkv_projection: Quantized,
            kv_cache_compression: true,
            attention_execution: None,
            mlp: Quantized,
            memory_reduction: 2,
            latency_reduction: 1,
        },
        TechniqueRow {
            name: "KIVI",
            qkv_projection: None,
            kv_cache_compression: true,
            attention_execution: None,
            mlp: None,
            memory_reduction: 1,
            latency_reduction: 1,
        },
        TechniqueRow {
            name: "GEAR",
            qkv_projection: None,
            kv_cache_compression: true,
            attention_execution: None,
            mlp: None,
            memory_reduction: 1,
            latency_reduction: 2,
        },
        TechniqueRow {
            name: "FlashAttention",
            qkv_projection: None,
            kv_cache_compression: false,
            attention_execution: Flash,
            mlp: None,
            memory_reduction: 0,
            latency_reduction: 1,
        },
        TechniqueRow {
            name: "TurboAttention",
            qkv_projection: None,
            kv_cache_compression: true,
            attention_execution: FlashQuantized,
            mlp: None,
            memory_reduction: 2,
            latency_reduction: 2,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_turbo_has_quantized_flash_attention() {
        let table = capability_table();
        let quantized_exec: Vec<_> = table
            .iter()
            .filter(|r| r.attention_execution == Capability::FlashQuantized)
            .collect();
        assert_eq!(quantized_exec.len(), 1);
        assert_eq!(quantized_exec[0].name, "TurboAttention");
    }

    #[test]
    fn turbo_also_compresses_kv_cache() {
        let turbo = capability_table()
            .into_iter()
            .find(|r| r.name == "TurboAttention")
            .unwrap();
        assert!(turbo.kv_cache_compression);
        assert_eq!(turbo.memory_reduction, 2);
        assert_eq!(turbo.latency_reduction, 2);
    }

    #[test]
    fn flash_attention_alone_does_not_compress() {
        let fa = capability_table()
            .into_iter()
            .find(|r| r.name == "FlashAttention")
            .unwrap();
        assert!(!fa.kv_cache_compression);
        assert_eq!(fa.memory_reduction, 0);
    }

    #[test]
    fn table_has_seven_rows() {
        assert_eq!(capability_table().len(), 7);
    }

    #[test]
    fn display_strings() {
        assert_eq!(Capability::FlashQuantized.to_string(), "Flash + Quantized");
        assert_eq!(Capability::None.to_string(), "-");
    }
}
