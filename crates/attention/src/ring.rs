//! Ring/Lean-attention-style sequence-parallel prefill.
//!
//! Ring Attention, Striped Attention and Lean Attention — all cited by
//! the paper as compatible optimizations — shard the key/value sequence
//! across devices; every device computes partial attention of the *whole*
//! query set over its shard, and the partials merge exactly with their
//! logsumexp weights. This module implements that composition for both
//! the exact kernel and the quantized TurboAttention kernel, proving the
//! paper's compatibility claim end to end: the merge only needs each
//! shard's `(O, lse)` pair, which Algorithm 1 already returns.

use crate::prefill::{turbo_prefill_head, PrefillOutput};
use crate::reference::{flash_attention_with_lse, Masking};
use turbo_kvcache::{HeadKvCache, KvCacheConfig};
use turbo_softmax::Sas;
use turbo_tensor::Matrix;

/// Merges per-shard partial outputs into the full attention output.
///
/// Shard `s` supplies `(O_s, lse_s)` where `O_s` is the normalized
/// attention of every query over that shard's keys and `lse_s[i]` is the
/// query's logsumexp there. The exact combination is
/// `O = Σ_s softmax-weight_s · O_s` with
/// `weight_s[i] = exp(lse_s[i] − lse*_i) / Σ_t exp(lse_t[i] − lse*_i)`.
///
/// # Panics
///
/// Panics if `parts` is empty or shapes/lengths disagree.
pub fn merge_shards(parts: &[(Matrix, Vec<f32>)]) -> Matrix {
    assert!(!parts.is_empty(), "no shards to merge");
    let (rows, cols) = parts[0].0.shape();
    for (o, lse) in parts {
        assert_eq!(o.shape(), (rows, cols), "shard output shape mismatch");
        assert_eq!(lse.len(), rows, "shard lse length mismatch");
    }
    let mut out = Matrix::zeros(rows, cols);
    for i in 0..rows {
        let max_lse = parts
            .iter()
            .map(|(_, l)| l[i])
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(max_lse.is_finite(), "query {i} attended to nothing");
        let mut total = 0.0f32;
        let weights: Vec<f32> = parts
            .iter()
            .map(|(_, l)| {
                let w = (l[i] - max_lse).exp();
                total += w;
                w
            })
            .collect();
        for (w, (o, _)) in weights.iter().zip(parts) {
            let wn = w / total;
            for c in 0..cols {
                let val = out.get(i, c) + wn * o.get(i, c);
                out.set(i, c, val);
            }
        }
    }
    out
}

/// Exact sequence-parallel prefill: shards `k`/`v` into `shards`
/// contiguous pieces, computes full-query partial attention per shard,
/// and merges. Produces the same output as single-device
/// [`crate::reference::flash_attention`] with `Masking::Full`.
///
/// # Panics
///
/// Panics if `shards == 0` or exceeds the key count.
pub fn ring_prefill_exact(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    shards: usize,
    block: usize,
) -> Matrix {
    ring_prefill_exact_on(turbo_runtime::global(), q, k, v, shards, block)
}

/// As [`ring_prefill_exact`], but on an explicit runtime. Each shard is
/// one pooled task (one per simulated "device"); the index-ordered merge
/// makes the result bit-identical at any worker count.
///
/// # Panics
///
/// As [`ring_prefill_exact`].
pub fn ring_prefill_exact_on(
    rt: &turbo_runtime::Runtime,
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    shards: usize,
    block: usize,
) -> Matrix {
    assert!(shards > 0, "need at least one shard");
    assert!(shards <= k.rows(), "more shards than keys");
    let shard_len = k.rows().div_ceil(shards);
    let parts: Vec<(Matrix, Vec<f32>)> = rt.par_map_indexed(shards, |s| {
        let start = s * shard_len;
        let len = shard_len.min(k.rows() - start);
        let ks = k.row_block(start, len);
        let vs = v.row_block(start, len);
        flash_attention_with_lse(q, &ks, &vs, Masking::Full, block, block)
    });
    merge_shards(&parts)
}

/// Quantized sequence-parallel prefill: every shard runs the full
/// TurboAttention Algorithm 1 (INT8 matmuls + SAS + cache write), then the
/// shard outputs merge by logsumexp. Returns the merged output and the
/// per-shard quantized caches (one per "device").
///
/// # Panics
///
/// Panics if `shards == 0` or exceeds the key count.
#[allow(clippy::too_many_arguments)]
pub fn ring_prefill_turbo(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    shards: usize,
    sas: &Sas,
    block: usize,
    cache_config: KvCacheConfig,
) -> (Matrix, Vec<HeadKvCache>) {
    ring_prefill_turbo_on(
        turbo_runtime::global(),
        q,
        k,
        v,
        shards,
        sas,
        block,
        cache_config,
    )
}

/// As [`ring_prefill_turbo`], but on an explicit runtime. Each shard
/// (Algorithm 1 + its own cache write) is one pooled task; the
/// index-ordered merge keeps the output and cache order bit-identical
/// at any worker count.
///
/// # Panics
///
/// As [`ring_prefill_turbo`].
#[allow(clippy::too_many_arguments)]
pub fn ring_prefill_turbo_on(
    rt: &turbo_runtime::Runtime,
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    shards: usize,
    sas: &Sas,
    block: usize,
    cache_config: KvCacheConfig,
) -> (Matrix, Vec<HeadKvCache>) {
    assert!(shards > 0, "need at least one shard");
    assert!(shards <= k.rows(), "more shards than keys");
    let shard_len = k.rows().div_ceil(shards);
    let results: Vec<((Matrix, Vec<f32>), HeadKvCache)> = rt.par_map_indexed(shards, |s| {
        let start = s * shard_len;
        let len = shard_len.min(k.rows() - start);
        let ks = k.row_block(start, len);
        let vs = v.row_block(start, len);
        let mut cache = HeadKvCache::new(q.cols(), cache_config);
        let PrefillOutput { output, lse } =
            turbo_prefill_head(q, &ks, &vs, Masking::Full, sas, block, block, &mut cache);
        ((output, lse), cache)
    });
    let (parts, caches): (Vec<(Matrix, Vec<f32>)>, Vec<HeadKvCache>) =
        results.into_iter().unzip();
    (merge_shards(&parts), caches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{flash_attention, naive_attention};
    use turbo_quant::BitWidth;
    use turbo_tensor::{max_abs_error, relative_error, TensorRng};

    fn qkv(seed: u64, n: usize, d: usize) -> (Matrix, Matrix, Matrix) {
        let mut rng = TensorRng::new(seed);
        (
            rng.normal(n, d, 0.0, 1.0),
            rng.normal(n, d, 0.0, 1.0),
            rng.normal(n, d, 0.0, 1.0),
        )
    }

    #[test]
    fn exact_ring_matches_single_device() {
        let (q, k, v) = qkv(1, 96, 16);
        let single = flash_attention(&q, &k, &v, Masking::Full, 32, 32);
        for shards in [1usize, 2, 3, 5, 96] {
            let ring = ring_prefill_exact(&q, &k, &v, shards, 16);
            assert!(
                max_abs_error(&single, &ring) < 1e-4,
                "{shards} shards diverged"
            );
        }
    }

    #[test]
    fn ragged_shards_are_exact_too() {
        let (q, k, v) = qkv(2, 50, 8); // 50 keys over 4 shards: 13/13/13/11
        let single = naive_attention(&q, &k, &v, Masking::Full);
        let ring = ring_prefill_exact(&q, &k, &v, 4, 8);
        assert!(max_abs_error(&single, &ring) < 1e-4);
    }

    #[test]
    fn quantized_ring_matches_quantized_single_device() {
        let (q, k, v) = qkv(3, 64, 16);
        let sas = Sas::paper_default();
        let cfg = KvCacheConfig {
            bits: BitWidth::Int4,
            group_size: 16,
            buffer_capacity: 16,
        };
        let mut single_cache = HeadKvCache::new(16, cfg);
        let single = turbo_prefill_head(&q, &k, &v, Masking::Full, &sas, 16, 16, &mut single_cache);
        let (ring, caches) = ring_prefill_turbo(&q, &k, &v, 4, &sas, 16, cfg);
        // Shard-local quantization scales differ slightly from the global
        // sweep, so allow a small tolerance.
        let rel = relative_error(&ring, &single.output);
        assert!(rel < 0.05, "quantized ring rel error {rel}");
        // Every shard cached its slice of the sequence.
        let total: usize = caches.iter().map(HeadKvCache::len).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn quantized_ring_tracks_exact_attention() {
        let (q, k, v) = qkv(4, 80, 16);
        let sas = Sas::paper_default();
        let cfg = KvCacheConfig {
            bits: BitWidth::Int4,
            group_size: 16,
            buffer_capacity: 16,
        };
        let exact = naive_attention(&q, &k, &v, Masking::Full);
        let (ring, _) = ring_prefill_turbo(&q, &k, &v, 5, &sas, 16, cfg);
        assert!(relative_error(&ring, &exact) < 0.06);
    }

    #[test]
    fn merge_is_shard_order_invariant() {
        let (q, k, v) = qkv(5, 32, 8);
        let a = flash_attention_with_lse(
            &q,
            &k.row_block(0, 16),
            &v.row_block(0, 16),
            Masking::Full,
            8,
            8,
        );
        let b = flash_attention_with_lse(
            &q,
            &k.row_block(16, 16),
            &v.row_block(16, 16),
            Masking::Full,
            8,
            8,
        );
        let fwd = merge_shards(&[a.clone(), b.clone()]);
        let rev = merge_shards(&[b, a]);
        assert!(max_abs_error(&fwd, &rev) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "more shards than keys")]
    fn too_many_shards_panics() {
        let (q, k, v) = qkv(6, 4, 4);
        ring_prefill_exact(&q, &k, &v, 5, 4);
    }

    #[test]
    fn pooled_shards_are_bit_identical_at_any_worker_count() {
        let (q, k, v) = qkv(7, 72, 16);
        let sas = Sas::paper_default();
        let cfg = KvCacheConfig {
            bits: BitWidth::Int4,
            group_size: 16,
            buffer_capacity: 16,
        };
        let serial_rt = turbo_runtime::Runtime::with_workers(1);
        let exact_base = ring_prefill_exact_on(&serial_rt, &q, &k, &v, 5, 16);
        let (turbo_base, caches_base) = ring_prefill_turbo_on(&serial_rt, &q, &k, &v, 5, &sas, 16, cfg);
        for workers in [2usize, 8] {
            let rt = turbo_runtime::Runtime::with_workers(workers);
            let exact = ring_prefill_exact_on(&rt, &q, &k, &v, 5, 16);
            assert_eq!(exact_base, exact, "exact ring diverged at {workers} workers");
            let (turbo, caches) = ring_prefill_turbo_on(&rt, &q, &k, &v, 5, &sas, 16, cfg);
            assert_eq!(turbo_base, turbo, "turbo ring diverged at {workers} workers");
            assert_eq!(caches.len(), caches_base.len());
            for (a, b) in caches_base.iter().zip(&caches) {
                assert_eq!(a.len(), b.len());
                assert_eq!(a.dequantize_all(), b.dequantize_all());
            }
        }
        // And the default entry point (global runtime) agrees too.
        assert_eq!(exact_base, ring_prefill_exact(&q, &k, &v, 5, 16));
    }
}
