//! Reusable scratch buffers for the zero-realloc decode hot path.
//!
//! Every fused decode step needs a handful of short-lived buffers: the
//! quantized query, one score row, one probability row, its INT8
//! re-quantization, the integer `P·V` accumulator, a transposed copy of
//! the open buffer's value codes, and the unnormalized output row. The
//! original kernels allocated each of these per call (and some per
//! *tile*); a [`Scratch`] owns them all so a steady-state decode loop
//! performs **zero** heap allocations — buffers are `clear()`ed and
//! refilled, which keeps their capacity.
//!
//! Lifetime rules: a `Scratch` is a plain bag of `Vec`s with no
//! invariants between calls — it can be shared across caches, heads, and
//! SAS configurations, grown on demand, dropped at any time. Nothing in
//! it affects numerics; kernels write every element they read.

use turbo_kvcache::HeadKvCache;

/// Reusable buffer arena for [`turbo_attend_cache_into`]
/// (crate::decode::turbo_attend_cache_into) and friends.
///
/// Construct once (optionally pre-sized with [`Scratch::for_cache`]) and
/// pass to every decode step; after the first call at a given cache
/// shape, subsequent calls allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    /// Quantized query row (`d` codes).
    pub(crate) q8: Vec<i8>,
    /// Raw integer score row for the current tile (`bc` i32 sums) — the
    /// fused kernels keep QK^T scores in integer form until the SAS
    /// exponential consumes them.
    pub(crate) si: Vec<i32>,
    /// SAS probability row (`bc` floats).
    pub(crate) p: Vec<f32>,
    /// INT8 re-quantized probability row (`bc` codes).
    pub(crate) p8: Vec<i8>,
    /// Integer `P·V` accumulator (`d` lanes).
    pub(crate) pv: Vec<i32>,
    /// Channel-major transpose of the open buffer's value codes
    /// (`d × buffer_len`; resident blocks carry theirs pre-transposed in
    /// the tile cache).
    pub(crate) vt: Vec<i8>,
    /// Unnormalized output accumulator (`d` floats).
    pub(crate) o: Vec<f32>,
}

impl Scratch {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena pre-sized for decoding against `cache`, so even the very
    /// first step allocates nothing: `d` comes from the head dimension
    /// and the widest tile is the larger of the biggest resident block
    /// and the buffer capacity.
    pub fn for_cache(cache: &HeadKvCache) -> Self {
        let d = cache.head_dim();
        // Cap the buffer-capacity contribution: configs that use a huge
        // capacity as a "never flush" sentinel would otherwise request an
        // absurd reservation. Such buffers grow on demand instead.
        const MAX_PRESIZE_ROWS: usize = 4096;
        let max_bc = cache
            .resident_blocks()
            .iter()
            .map(|b| b.rows())
            .max()
            .unwrap_or(0)
            .max(cache.config().buffer_capacity.min(MAX_PRESIZE_ROWS))
            .max(cache.buffer_len());
        let mut s = Self::new();
        s.reserve(d, max_bc);
        s
    }

    /// Ensures capacity for head dimension `d` and tile height `max_bc`.
    pub fn reserve(&mut self, d: usize, max_bc: usize) {
        ensure_cap(&mut self.q8, d);
        ensure_cap(&mut self.si, max_bc);
        ensure_cap(&mut self.p, max_bc);
        ensure_cap(&mut self.p8, max_bc);
        ensure_cap(&mut self.pv, d);
        ensure_cap(&mut self.vt, d * max_bc);
        ensure_cap(&mut self.o, d);
    }
}

fn ensure_cap<T>(v: &mut Vec<T>, want: usize) {
    if v.capacity() < want {
        v.reserve(want - v.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_kvcache::KvCacheConfig;
    use turbo_quant::BitWidth;

    #[test]
    fn for_cache_presizes_every_buffer() {
        let mut cache = HeadKvCache::new(
            8,
            KvCacheConfig {
                bits: BitWidth::Int4,
                group_size: 32,
                buffer_capacity: 16,
            },
        );
        for t in 0..20 {
            let row = [t as f32 * 0.1; 8];
            cache.append(&row, &row);
        }
        let s = Scratch::for_cache(&cache);
        assert!(s.q8.capacity() >= 8);
        assert!(s.si.capacity() >= 16);
        assert!(s.p.capacity() >= 16);
        assert!(s.p8.capacity() >= 16);
        assert!(s.pv.capacity() >= 8);
        assert!(s.vt.capacity() >= 8 * 16);
        assert!(s.o.capacity() >= 8);
    }
}
