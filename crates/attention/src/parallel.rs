//! Thread-parallel layer execution.
//!
//! Attention heads are embarrassingly parallel — on a GPU they map to
//! independent thread blocks; on this CPU substrate they map to scoped
//! threads. Results are bit-identical to the serial path because each
//! head's computation is fully independent and deterministic.

use crate::api::TurboAttention;
use crate::decode::turbo_attend_cache;
use crate::prefill::turbo_prefill_head;
use turbo_kvcache::{HeadKvCache, KvCacheConfig, LayerKvCache};
use turbo_quant::BitWidth;
use turbo_tensor::Matrix;

impl TurboAttention {
    /// Parallel variant of [`TurboAttention::prefill_layer`]: one thread
    /// per head. Output and caches are bit-identical to the serial path.
    ///
    /// # Panics
    ///
    /// As [`TurboAttention::prefill_layer`].
    pub fn prefill_layer_parallel(
        &self,
        qs: &[Matrix],
        ks: &[Matrix],
        vs: &[Matrix],
        bits_per_head: &[BitWidth],
    ) -> (Vec<Matrix>, LayerKvCache) {
        let h = qs.len();
        assert!(h > 0, "at least one head required");
        assert_eq!(ks.len(), h, "per-head K count mismatch");
        assert_eq!(vs.len(), h, "per-head V count mismatch");
        assert_eq!(bits_per_head.len(), h, "per-head bit-width count mismatch");
        let d = qs[0].cols();
        let cfg = *self.config();

        let results: Vec<(Matrix, HeadKvCache)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..h)
                .map(|i| {
                    let (q, k, v) = (&qs[i], &ks[i], &vs[i]);
                    let bits = bits_per_head[i];
                    let sas = self.sas();
                    scope.spawn(move || {
                        let mut cache = HeadKvCache::new(
                            d,
                            KvCacheConfig {
                                bits,
                                group_size: cfg.group_size,
                                buffer_capacity: cfg.buffer_capacity,
                            },
                        );
                        let out = turbo_prefill_head(
                            q,
                            k,
                            v,
                            cfg.masking,
                            sas,
                            cfg.block_r,
                            cfg.block_c,
                            &mut cache,
                        );
                        (out.output, cache)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|hd| hd.join().expect("head worker panicked"))
                .collect()
        });

        let mut outs = Vec::with_capacity(h);
        let mut caches = Vec::with_capacity(h);
        for (o, c) in results {
            outs.push(o);
            caches.push(c);
        }
        (outs, LayerKvCache::from_heads(caches))
    }

    /// Parallel variant of [`TurboAttention::decode_layer`]: appends and
    /// attends every head concurrently.
    ///
    /// # Panics
    ///
    /// As [`TurboAttention::decode_layer`].
    pub fn decode_layer_parallel(
        &self,
        qs: &[&[f32]],
        ks: &[&[f32]],
        vs: &[&[f32]],
        layer: &mut LayerKvCache,
    ) -> Vec<Vec<f32>> {
        let h = layer.num_heads();
        assert_eq!(qs.len(), h, "one query row per head required");
        assert_eq!(ks.len(), h, "one key row per head required");
        assert_eq!(vs.len(), h, "one value row per head required");
        let sas = self.sas();
        std::thread::scope(|scope| {
            let handles: Vec<_> = layer
                .iter_mut()
                .zip(qs.iter().zip(ks.iter().zip(vs)))
                .map(|(cache, (q, (k, v)))| {
                    scope.spawn(move || {
                        cache.append(k, v);
                        turbo_attend_cache(q, cache, sas)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|hd| hd.join().expect("head worker panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::TensorRng;

    fn heads(seed: u64, h: usize, n: usize, d: usize) -> Vec<Matrix> {
        let mut rng = TensorRng::new(seed);
        (0..h).map(|_| rng.normal(n, d, 0.0, 1.0)).collect()
    }

    #[test]
    fn parallel_prefill_matches_serial_bit_for_bit() {
        let qs = heads(1, 6, 96, 16);
        let ks = heads(2, 6, 96, 16);
        let vs = heads(3, 6, 96, 16);
        let bits = [
            BitWidth::Int4,
            BitWidth::Int2,
            BitWidth::Int4,
            BitWidth::Int4,
            BitWidth::Int2,
            BitWidth::Int4,
        ];
        let engine = TurboAttention::default();
        let (serial_out, serial_cache) = engine.prefill_layer(&qs, &ks, &vs, &bits);
        let (par_out, par_cache) = engine.prefill_layer_parallel(&qs, &ks, &vs, &bits);
        assert_eq!(serial_out, par_out);
        for h in 0..6 {
            assert_eq!(
                serial_cache.head(h).dequantize_all(),
                par_cache.head(h).dequantize_all()
            );
        }
    }

    #[test]
    fn parallel_decode_matches_serial() {
        let qs = heads(4, 4, 32, 8);
        let ks = heads(5, 4, 32, 8);
        let vs = heads(6, 4, 32, 8);
        let engine = TurboAttention::default();
        let bits = [BitWidth::Int4; 4];
        let (_, mut serial_cache) = engine.prefill_layer(&qs, &ks, &vs, &bits);
        let (_, mut par_cache) = engine.prefill_layer(&qs, &ks, &vs, &bits);
        let step = heads(7, 4, 1, 8);
        let rows: Vec<&[f32]> = step.iter().map(|m| m.row(0)).collect();
        let serial = engine.decode_layer(&rows, &rows, &rows, &mut serial_cache);
        let parallel = engine.decode_layer_parallel(&rows, &rows, &rows, &mut par_cache);
        assert_eq!(serial, parallel);
        assert_eq!(serial_cache.len(), par_cache.len());
    }
}
