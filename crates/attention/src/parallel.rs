//! Pooled layer execution on the shared work-stealing runtime.
//!
//! Attention heads are embarrassingly parallel — on a GPU they map to
//! independent thread blocks; on this CPU substrate they map to tasks on
//! the persistent [`turbo_runtime`] pool. Each head task additionally
//! fans its query row-block sweeps out as nested tasks
//! ([`turbo_prefill_head_pooled`]), so a layer with fewer heads than
//! cores still saturates the pool. Results are bit-identical to the
//! serial path because the task partition is fixed by the input shape
//! alone and results merge in head/row order — worker count never enters
//! the arithmetic.
//!
//! The old implementation spawned one fresh OS thread per head per call,
//! oversubscribing the machine whenever `heads > cores` and paying spawn
//! latency on every decode step. The pool spawns its workers once; the
//! `pool_never_exceeds_configured_worker_count` regression test in
//! `turbo-runtime` pins that via `HealthStats`.

use crate::api::TurboAttention;
use crate::decode::turbo_attend_cache;
use crate::prefill::turbo_prefill_head_pooled;
use turbo_kvcache::{HeadKvCache, KvCacheConfig, LayerKvCache};
use turbo_quant::BitWidth;
use turbo_runtime::Runtime;
use turbo_tensor::Matrix;

impl TurboAttention {
    /// Parallel variant of [`TurboAttention::prefill_layer`] on the
    /// global runtime: one pooled task per head, with nested row-block
    /// tasks inside each head. Output and caches are bit-identical to
    /// the serial path at any worker count.
    ///
    /// # Panics
    ///
    /// As [`TurboAttention::prefill_layer`].
    pub fn prefill_layer_parallel(
        &self,
        qs: &[Matrix],
        ks: &[Matrix],
        vs: &[Matrix],
        bits_per_head: &[BitWidth],
    ) -> (Vec<Matrix>, LayerKvCache) {
        self.prefill_layer_parallel_on(turbo_runtime::global(), qs, ks, vs, bits_per_head)
    }

    /// As [`TurboAttention::prefill_layer_parallel`], but on an explicit
    /// runtime — the hook the equivalence tests use to pin bit-identical
    /// output at 1, 2, and N workers.
    pub fn prefill_layer_parallel_on(
        &self,
        rt: &Runtime,
        qs: &[Matrix],
        ks: &[Matrix],
        vs: &[Matrix],
        bits_per_head: &[BitWidth],
    ) -> (Vec<Matrix>, LayerKvCache) {
        let h = qs.len();
        assert!(h > 0, "at least one head required");
        assert_eq!(ks.len(), h, "per-head K count mismatch");
        assert_eq!(vs.len(), h, "per-head V count mismatch");
        assert_eq!(bits_per_head.len(), h, "per-head bit-width count mismatch");
        let d = qs[0].cols();
        let cfg = *self.config();
        let sas = self.sas();

        let results: Vec<(Matrix, HeadKvCache)> = rt.par_map_indexed(h, |i| {
            let mut cache = HeadKvCache::new(
                d,
                KvCacheConfig {
                    bits: bits_per_head[i],
                    group_size: cfg.group_size,
                    buffer_capacity: cfg.buffer_capacity,
                },
            );
            let out = turbo_prefill_head_pooled(
                &qs[i],
                &ks[i],
                &vs[i],
                cfg.masking,
                sas,
                cfg.block_r,
                cfg.block_c,
                &mut cache,
                rt,
            );
            (out.output, cache)
        });

        let mut outs = Vec::with_capacity(h);
        let mut caches = Vec::with_capacity(h);
        for (o, c) in results {
            outs.push(o);
            caches.push(c);
        }
        (outs, LayerKvCache::from_heads(caches))
    }

    /// Parallel variant of [`TurboAttention::decode_layer`] on the global
    /// runtime: appends and attends every head as a pooled task.
    ///
    /// # Panics
    ///
    /// As [`TurboAttention::decode_layer`].
    pub fn decode_layer_parallel(
        &self,
        qs: &[&[f32]],
        ks: &[&[f32]],
        vs: &[&[f32]],
        layer: &mut LayerKvCache,
    ) -> Vec<Vec<f32>> {
        self.decode_layer_parallel_on(turbo_runtime::global(), qs, ks, vs, layer)
    }

    /// As [`TurboAttention::decode_layer_parallel`], but on an explicit
    /// runtime (worker-count equivalence tests).
    pub fn decode_layer_parallel_on(
        &self,
        rt: &Runtime,
        qs: &[&[f32]],
        ks: &[&[f32]],
        vs: &[&[f32]],
        layer: &mut LayerKvCache,
    ) -> Vec<Vec<f32>> {
        let h = layer.num_heads();
        assert_eq!(qs.len(), h, "one query row per head required");
        assert_eq!(ks.len(), h, "one key row per head required");
        assert_eq!(vs.len(), h, "one value row per head required");
        let sas = self.sas();
        let mut heads: Vec<(usize, &mut HeadKvCache)> = layer.iter_mut().enumerate().collect();
        rt.par_map_mut(&mut heads, |(i, cache)| {
            cache.append(ks[*i], vs[*i]);
            turbo_attend_cache(qs[*i], cache, sas)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::TensorRng;

    fn heads(seed: u64, h: usize, n: usize, d: usize) -> Vec<Matrix> {
        let mut rng = TensorRng::new(seed);
        (0..h).map(|_| rng.normal(n, d, 0.0, 1.0)).collect()
    }

    /// Worker counts the equivalence tests sweep: serial-on-pool, the
    /// smallest truly concurrent pool, and an oversubscribed "N".
    const WORKER_SWEEP: [usize; 3] = [1, 2, 8];

    #[test]
    fn parallel_prefill_matches_serial_bit_for_bit() {
        let qs = heads(1, 6, 96, 16);
        let ks = heads(2, 6, 96, 16);
        let vs = heads(3, 6, 96, 16);
        let bits = [
            BitWidth::Int4,
            BitWidth::Int2,
            BitWidth::Int4,
            BitWidth::Int4,
            BitWidth::Int2,
            BitWidth::Int4,
        ];
        let engine = TurboAttention::default();
        let (serial_out, serial_cache) = engine.prefill_layer(&qs, &ks, &vs, &bits);

        // Global pool (whatever size the machine gives us)...
        let (par_out, par_cache) = engine.prefill_layer_parallel(&qs, &ks, &vs, &bits);
        assert_eq!(serial_out, par_out);
        for h in 0..6 {
            assert_eq!(
                serial_cache.head(h).dequantize_all(),
                par_cache.head(h).dequantize_all()
            );
        }

        // ...and pinned pools at 1, 2, and N workers.
        for workers in WORKER_SWEEP {
            let rt = Runtime::with_workers(workers);
            let (out, cache) = engine.prefill_layer_parallel_on(&rt, &qs, &ks, &vs, &bits);
            assert_eq!(serial_out, out, "{workers} workers diverged");
            for h in 0..6 {
                assert_eq!(
                    serial_cache.head(h).dequantize_all(),
                    cache.head(h).dequantize_all(),
                    "{workers}-worker cache diverged at head {h}"
                );
            }
        }
    }

    #[test]
    fn parallel_decode_matches_serial() {
        let qs = heads(4, 4, 32, 8);
        let ks = heads(5, 4, 32, 8);
        let vs = heads(6, 4, 32, 8);
        let engine = TurboAttention::default();
        let bits = [BitWidth::Int4; 4];
        let (_, mut serial_cache) = engine.prefill_layer(&qs, &ks, &vs, &bits);
        let step = heads(7, 4, 1, 8);
        let rows: Vec<&[f32]> = step.iter().map(|m| m.row(0)).collect();
        let serial = engine.decode_layer(&rows, &rows, &rows, &mut serial_cache);

        let (_, mut par_cache) = engine.prefill_layer(&qs, &ks, &vs, &bits);
        let parallel = engine.decode_layer_parallel(&rows, &rows, &rows, &mut par_cache);
        assert_eq!(serial, parallel);
        assert_eq!(serial_cache.len(), par_cache.len());

        for workers in WORKER_SWEEP {
            let rt = Runtime::with_workers(workers);
            let (_, mut cache) = engine.prefill_layer(&qs, &ks, &vs, &bits);
            let out = engine.decode_layer_parallel_on(&rt, &rows, &rows, &rows, &mut cache);
            assert_eq!(serial, out, "{workers} workers diverged");
            assert_eq!(serial_cache.len(), cache.len());
        }
    }

    #[test]
    fn pooled_prefill_head_matches_serial_across_worker_counts() {
        use crate::prefill::{turbo_prefill_head, turbo_prefill_head_pooled};
        use crate::reference::Masking;
        use turbo_softmax::Sas;

        let mut rng = TensorRng::new(11);
        let q = rng.normal(70, 16, 0.0, 1.0); // ragged tail: 70 = 2*32 + 6
        let k = rng.normal(70, 16, 0.0, 1.0);
        let v = rng.normal(70, 16, 0.0, 1.0);
        let sas = Sas::paper_default();
        let cache_cfg = KvCacheConfig {
            bits: BitWidth::Int4,
            group_size: 64,
            buffer_capacity: 64,
        };
        let mut cache = HeadKvCache::new(16, cache_cfg);
        let serial = turbo_prefill_head(&q, &k, &v, Masking::Causal, &sas, 32, 32, &mut cache);

        for workers in WORKER_SWEEP {
            let rt = Runtime::with_workers(workers);
            let mut cache = HeadKvCache::new(16, cache_cfg);
            let pooled = turbo_prefill_head_pooled(
                &q,
                &k,
                &v,
                Masking::Causal,
                &sas,
                32,
                32,
                &mut cache,
                &rt,
            );
            assert_eq!(serial.output, pooled.output, "{workers} workers diverged");
            assert_eq!(serial.lse, pooled.lse, "{workers}-worker lse diverged");
        }
    }
}
