//! Split-K (FlashDecoding-style) decode over the quantized cache.
//!
//! At long contexts a single decode query leaves most GPU SMs idle; Flash
//! Decoding (Dao et al. 2023) and Lean Attention — both cited by the
//! paper as compatible optimizations — split the key/value sequence into
//! partitions, compute partial attention per partition in parallel, and
//! merge the partials with their logsumexp weights. This module provides
//! that merge on top of the quantized cache, so TurboAttention composes
//! with sequence-parallel decode the way the paper claims.

use std::cell::RefCell;

use crate::scratch::Scratch;
use turbo_kvcache::HeadKvCache;
use turbo_quant::symmetric::{quantize_slice_sym, quantize_slice_sym_into};
use turbo_runtime::Runtime;
use turbo_softmax::Sas;
use turbo_tensor::matmul_i8_transposed_b_into;

/// One partition's partial attention state: unnormalized output, running
/// max, and running sum (the `(O, m, ℓ)` triple of Algorithm 2).
#[derive(Clone, Debug)]
pub struct PartialAttention {
    /// Unnormalized output row (`ℓ`-weighted).
    pub output: Vec<f32>,
    /// Partition's score maximum `m`.
    pub max: f32,
    /// Partition's probability sum `ℓ`.
    pub sum: f32,
}

impl PartialAttention {
    /// Merges partials from disjoint partitions into the final output
    /// row, exactly as the FlashDecoding reduction does:
    /// `m* = max mᵢ`, `ℓ* = Σ ℓᵢ·e^{mᵢ−m*}`, `O = Σ Oᵢ·e^{mᵢ−m*} / ℓ*`.
    ///
    /// The rescale factors use the same `sas` evaluator the partition
    /// kernels used, so the merge is bit-consistent with a fused sweep.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, widths disagree, or all partitions were
    /// empty.
    pub fn merge(parts: &[PartialAttention], sas: &Sas) -> Vec<f32> {
        assert!(!parts.is_empty(), "nothing to merge");
        let d = parts[0].output.len();
        let m_star = parts
            .iter()
            .map(|p| p.max)
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(m_star.is_finite(), "all partitions were empty");
        let mut out = vec![0.0f32; d];
        let mut l_star = 0.0f32;
        for p in parts {
            assert_eq!(p.output.len(), d, "partial width mismatch");
            if p.max == f32::NEG_INFINITY {
                continue;
            }
            let w = sas.exp(p.max - m_star);
            l_star += p.sum * w;
            for (o, &po) in out.iter_mut().zip(&p.output) {
                *o += po * w;
            }
        }
        assert!(l_star > 0.0, "merged attention attended to nothing");
        for o in &mut out {
            *o /= l_star;
        }
        out
    }
}

thread_local! {
    /// Per-worker scratch arena: split-K partials run as pooled tasks on
    /// arbitrary workers, so each thread keeps its own buffers and a
    /// steady-state partial allocates only its output row.
    static SPLITK_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Computes one partition's partial attention of `q8` (pre-quantized
/// query with scale `s_q`) over an INT8 K/V tile whose value codes are
/// already channel-major (`vt_codes`, `d × rows`).
#[allow(clippy::too_many_arguments)]
fn partial_over_tile(
    q8: &[i8],
    s_q: f32,
    scale: f32,
    k_codes: &[i8],
    k_scale: f32,
    vt_codes: &[i8],
    v_scale: f32,
    rows: usize,
    sas: &Sas,
) -> PartialAttention {
    let d = q8.len();
    debug_assert_eq!(k_codes.len(), rows * d, "K tile shape mismatch");
    debug_assert_eq!(vt_codes.len(), rows * d, "V tile shape mismatch");
    SPLITK_SCRATCH.with(|cell| {
        let sc = &mut *cell.borrow_mut();
        // Fused integer path, mirroring decode::attend_tile: scores stay
        // i32 through the GEMM, the row max comes from the integer sums
        // (weakly monotone conversion + positive scale preserve it), and
        // SAS consumes codes plus scale directly.
        let s_scale = s_q * k_scale * scale;
        matmul_i8_transposed_b_into(q8, k_codes, 1, d, rows, &mut sc.si);
        let m = match sc.si.iter().max() {
            Some(&mx) => mx as f32 * s_scale,
            None => f32::NEG_INFINITY,
        };
        sc.p.clear();
        sc.p.resize(rows, 0.0);
        let l = sas.exp_scaled_row_into(&sc.si, s_scale, m, &mut sc.p);
        // Quantize the probability row and run the integer P·V product,
        // exactly as the fused kernel does.
        let s_p = quantize_slice_sym_into(&sc.p, &mut sc.p8);
        matmul_i8_transposed_b_into(&sc.p8, vt_codes, 1, rows, d, &mut sc.pv);
        let pv_scale = s_p * v_scale;
        PartialAttention {
            output: sc.pv.iter().map(|&x| x as f32 * pv_scale).collect(),
            max: m,
            sum: l,
        }
    })
}

/// Split-K decode: attends `q` over the cache with each resident block
/// (and the open buffer) treated as an independent partition, then merges.
///
/// Produces the same result as [`crate::decode::turbo_attend_cache`] up to
/// the (tiny) difference in SAS rescale factor grouping.
///
/// # Panics
///
/// Panics if `q.len()` differs from the cache head dimension or the cache
/// is empty.
pub fn turbo_attend_cache_splitk(q: &[f32], cache: &HeadKvCache, sas: &Sas) -> Vec<f32> {
    turbo_attend_cache_splitk_on(turbo_runtime::global(), q, cache, sas)
}

/// As [`turbo_attend_cache_splitk`], but on an explicit runtime. Each
/// resident block's partial attention runs as one pooled task; the
/// partition set is fixed by the cache layout and partials merge in
/// block order, so the result is bit-identical at any worker count.
///
/// # Panics
///
/// As [`turbo_attend_cache_splitk`].
pub fn turbo_attend_cache_splitk_on(
    rt: &Runtime,
    q: &[f32],
    cache: &HeadKvCache,
    sas: &Sas,
) -> Vec<f32> {
    let d = cache.head_dim();
    assert_eq!(q.len(), d, "query width mismatch");
    assert!(!cache.is_empty(), "cannot attend to an empty cache");
    let scale = 1.0 / (d as f32).sqrt();
    let (q8, s_q) = quantize_slice_sym(q);

    let nb = cache.resident_blocks().len();
    let mut parts: Vec<PartialAttention> = rt.par_map_indexed(nb, |b| {
        let tile = cache.resident_tile(b);
        partial_over_tile(
            &q8,
            s_q,
            scale,
            tile.k_codes(),
            tile.k_scale(),
            tile.vt_codes(),
            tile.v_scale(),
            tile.rows(),
            sas,
        )
    });
    if cache.buffer_len() > 0 {
        let kb = cache.key_buffer();
        let vb = cache.value_buffer();
        let rows = kb.len();
        let v_codes = vb.codes();
        let mut vt = vec![0i8; rows * d];
        for (r, v_row) in v_codes.chunks_exact(d).enumerate() {
            for (c, &x) in v_row.iter().enumerate() {
                vt[c * rows + r] = x;
            }
        }
        parts.push(partial_over_tile(
            &q8,
            s_q,
            scale,
            kb.codes(),
            kb.scale().expect("non-empty buffer has a scale"),
            &vt,
            vb.scale().expect("non-empty buffer has a scale"),
            rows,
            sas,
        ));
    }
    PartialAttention::merge(&parts, sas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::turbo_attend_cache;
    use turbo_kvcache::KvCacheConfig;
    use turbo_quant::BitWidth;
    use turbo_tensor::TensorRng;

    fn populated_cache(seed: u64, n: usize, d: usize, nb: usize) -> HeadKvCache {
        let mut rng = TensorRng::new(seed);
        let k = rng.normal(n, d, 0.0, 1.0);
        let v = rng.normal(n, d, 0.0, 1.0);
        let mut cache = HeadKvCache::new(
            d,
            KvCacheConfig {
                bits: BitWidth::Int4,
                group_size: 32,
                buffer_capacity: nb,
            },
        );
        for t in 0..n {
            cache.append(k.row(t), v.row(t));
        }
        cache
    }

    #[test]
    fn splitk_matches_fused_decode() {
        // 200 tokens with nb=32: 6 resident partitions + 8 buffered.
        let cache = populated_cache(1, 200, 16, 32);
        let sas = Sas::paper_default();
        let mut rng = TensorRng::new(2);
        for _ in 0..10 {
            let q: Vec<f32> = (0..16).map(|_| rng.standard_normal()).collect();
            let fused = turbo_attend_cache(&q, &cache, &sas);
            let split = turbo_attend_cache_splitk(&q, &cache, &sas);
            for (a, b) in fused.iter().zip(&split) {
                assert!((a - b).abs() < 2e-2, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn splitk_single_partition_is_exactly_fused() {
        // One resident block only: the merge is a no-op.
        let cache = populated_cache(3, 32, 8, 32);
        assert_eq!(cache.resident_blocks().len(), 1);
        assert_eq!(cache.buffer_len(), 0);
        let sas = Sas::paper_default();
        let q = [0.3f32; 8];
        let fused = turbo_attend_cache(&q, &cache, &sas);
        let split = turbo_attend_cache_splitk(&q, &cache, &sas);
        for (a, b) in fused.iter().zip(&split) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn merge_is_permutation_invariant() {
        let cache = populated_cache(4, 128, 8, 16);
        let sas = Sas::paper_default();
        let scale = 1.0 / (8f32).sqrt();
        let q = [0.5f32; 8];
        let (q8, s_q) = quantize_slice_sym(&q);
        let mut parts: Vec<PartialAttention> = (0..cache.resident_blocks().len())
            .map(|b| {
                let tile = cache.resident_tile(b);
                partial_over_tile(
                    &q8,
                    s_q,
                    scale,
                    tile.k_codes(),
                    tile.k_scale(),
                    tile.vt_codes(),
                    tile.v_scale(),
                    tile.rows(),
                    &sas,
                )
            })
            .collect();
        let forward = PartialAttention::merge(&parts, &sas);
        parts.reverse();
        let backward = PartialAttention::merge(&parts, &sas);
        for (a, b) in forward.iter().zip(&backward) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn merge_ignores_empty_partitions() {
        let sas = Sas::paper_default();
        let real = PartialAttention {
            output: vec![2.0, 4.0],
            max: 0.5,
            sum: 2.0,
        };
        let empty = PartialAttention {
            output: vec![0.0, 0.0],
            max: f32::NEG_INFINITY,
            sum: 0.0,
        };
        let merged = PartialAttention::merge(&[real.clone(), empty], &sas);
        assert!((merged[0] - 1.0).abs() < 1e-6);
        assert!((merged[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "nothing to merge")]
    fn merging_nothing_panics() {
        PartialAttention::merge(&[], &Sas::paper_default());
    }

    #[test]
    fn splitk_is_bit_identical_across_worker_counts() {
        let cache = populated_cache(5, 200, 16, 32);
        let sas = Sas::paper_default();
        let q: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) * 0.1).collect();
        let baseline = turbo_attend_cache_splitk(&q, &cache, &sas);
        for workers in [1usize, 2, 8] {
            let rt = turbo_runtime::Runtime::with_workers(workers);
            let out = turbo_attend_cache_splitk_on(&rt, &q, &cache, &sas);
            assert_eq!(baseline, out, "{workers} workers diverged");
        }
    }
}
