//! Reusable online-softmax accumulator (Milakov & Gimelshein 2018).
//!
//! FlashAttention's single-pass trick — and Algorithm 1's quantized
//! variant — both rest on the same recurrence: fold score blocks into a
//! running `(output, max, sum)` triple, rescaling past contributions when
//! a new maximum appears. This module exposes that recurrence as a
//! standalone type so downstream code (new kernels, tests, teaching
//! examples) can build on it without re-deriving the algebra.

use crate::sas::Sas;
use turbo_tensor::Matrix;

/// Streaming softmax-weighted accumulator for one query row.
///
/// Feed `(scores, values)` blocks in any order; [`OnlineSoftmax::finish`]
/// returns exactly `softmax(all scores) · all values` (up to f32
/// rounding).
///
/// # Example
///
/// ```
/// use turbo_softmax::OnlineSoftmax;
/// use turbo_tensor::Matrix;
///
/// let mut acc = OnlineSoftmax::new(2);
/// acc.update(&[0.0, 1.0], &Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
/// acc.update(&[2.0], &Matrix::from_rows(&[&[4.0, 4.0]]));
/// let out = acc.finish();
/// // Equivalent to softmax([0, 1, 2]) · [[1,0],[0,1],[4,4]].
/// assert!((out[0] - (0.0900 + 0.0 + 0.6652 * 4.0)).abs() < 1e-3);
/// ```
#[derive(Clone, Debug)]
pub struct OnlineSoftmax {
    output: Vec<f32>,
    max: f32,
    sum: f32,
    exp: ExpMode,
}

#[derive(Clone, Debug)]
enum ExpMode {
    Exact,
    Sas(Sas),
}

impl OnlineSoftmax {
    /// Creates an accumulator producing `d`-dimensional outputs, using
    /// exact `f32` exponentiation.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "output dimension must be positive");
        Self {
            output: vec![0.0; d],
            max: f32::NEG_INFINITY,
            sum: 0.0,
            exp: ExpMode::Exact,
        }
    }

    /// Creates an accumulator that exponentiates with SAS — the recurrence
    /// Algorithm 1 runs on GPU tensor cores.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn with_sas(d: usize, sas: Sas) -> Self {
        let mut s = Self::new(d);
        s.exp = ExpMode::Sas(sas);
        s
    }

    fn exp(&self, x: f32) -> f32 {
        match &self.exp {
            ExpMode::Exact => x.exp(),
            ExpMode::Sas(s) => s.exp(x),
        }
    }

    /// Number of score entries folded in so far... tracked via the running
    /// sum being positive.
    pub fn is_empty(&self) -> bool {
        self.max == f32::NEG_INFINITY
    }

    /// Folds one block: `scores[j]` weighs `values.row(j)`.
    ///
    /// Entries of `-∞` are treated as masked (zero weight).
    ///
    /// # Panics
    ///
    /// Panics if `scores.len() != values.rows()` or widths mismatch.
    pub fn update(&mut self, scores: &[f32], values: &Matrix) {
        assert_eq!(scores.len(), values.rows(), "score/value count mismatch");
        assert_eq!(values.cols(), self.output.len(), "value width mismatch");
        let block_max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let new_max = self.max.max(block_max);
        if new_max == f32::NEG_INFINITY {
            return; // fully masked block, nothing to fold
        }
        let corr = if self.max == f32::NEG_INFINITY {
            0.0
        } else {
            self.exp(self.max - new_max)
        };
        self.sum *= corr;
        for o in &mut self.output {
            *o *= corr;
        }
        for (j, &s) in scores.iter().enumerate() {
            if s == f32::NEG_INFINITY {
                continue;
            }
            let w = self.exp(s - new_max);
            self.sum += w;
            for (o, &v) in self.output.iter_mut().zip(values.row(j)) {
                *o += w * v;
            }
        }
        self.max = new_max;
    }

    /// The running logsumexp `m + ln ℓ` of everything folded so far.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been folded.
    pub fn logsumexp(&self) -> f32 {
        assert!(!self.is_empty(), "no scores folded");
        self.max + self.sum.ln()
    }

    /// Normalizes and returns the softmax-weighted output.
    ///
    /// # Panics
    ///
    /// Panics if nothing (or only masked entries) was folded.
    pub fn finish(self) -> Vec<f32> {
        assert!(
            self.sum > 0.0,
            "online softmax finished without any unmasked scores"
        );
        let inv = 1.0 / self.sum;
        self.output.into_iter().map(|o| o * inv).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::softmax;
    use turbo_tensor::{matmul, TensorRng};

    /// Dense reference: softmax(scores) · values.
    fn dense(scores: &[f32], values: &Matrix) -> Vec<f32> {
        let s = Matrix::from_vec(1, scores.len(), scores.to_vec());
        matmul(&softmax(&s), values).row(0).to_vec()
    }

    #[test]
    fn single_block_matches_dense() {
        let mut rng = TensorRng::new(1);
        let v = rng.normal(10, 4, 0.0, 1.0);
        let s: Vec<f32> = (0..10).map(|_| rng.standard_normal()).collect();
        let mut acc = OnlineSoftmax::new(4);
        acc.update(&s, &v);
        let out = acc.finish();
        for (a, b) in out.iter().zip(dense(&s, &v)) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn block_partitioning_is_invisible() {
        let mut rng = TensorRng::new(2);
        let v = rng.normal(32, 8, 0.0, 1.0);
        let s: Vec<f32> = (0..32).map(|_| rng.standard_normal() * 3.0).collect();
        let reference = dense(&s, &v);
        for chunk in [1usize, 3, 8, 32] {
            let mut acc = OnlineSoftmax::new(8);
            let mut start = 0;
            while start < 32 {
                let len = chunk.min(32 - start);
                acc.update(&s[start..start + len], &v.row_block(start, len));
                start += len;
            }
            let out = acc.finish();
            for (a, b) in out.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-4, "chunk {chunk}");
            }
        }
    }

    #[test]
    fn masked_entries_are_skipped() {
        let v = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[9.0, 9.0]]);
        let s = [0.0, 0.0, f32::NEG_INFINITY];
        let mut acc = OnlineSoftmax::new(2);
        acc.update(&s, &v);
        let out = acc.finish();
        assert!((out[0] - 0.5).abs() < 1e-6);
        assert!((out[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn fully_masked_blocks_are_noops() {
        let mut acc = OnlineSoftmax::new(2);
        acc.update(
            &[f32::NEG_INFINITY; 2],
            &Matrix::from_rows(&[&[5.0, 5.0], &[6.0, 6.0]]),
        );
        assert!(acc.is_empty());
        acc.update(&[1.0], &Matrix::from_rows(&[&[2.0, 3.0]]));
        let out = acc.finish();
        assert_eq!(out, vec![2.0, 3.0]);
    }

    #[test]
    fn logsumexp_matches_dense() {
        let mut rng = TensorRng::new(3);
        let v = rng.normal(16, 2, 0.0, 1.0);
        let s: Vec<f32> = (0..16).map(|_| rng.standard_normal() * 2.0).collect();
        let mut acc = OnlineSoftmax::new(2);
        acc.update(&s[..7], &v.row_block(0, 7));
        acc.update(&s[7..], &v.row_block(7, 9));
        let max = s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = max + s.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
        assert!((acc.logsumexp() - lse).abs() < 1e-5);
    }

    #[test]
    fn sas_mode_approximates_exact_mode() {
        let mut rng = TensorRng::new(4);
        let v = rng.normal(24, 4, 0.0, 1.0);
        let s: Vec<f32> = (0..24).map(|_| rng.standard_normal() * 2.0).collect();
        let mut exact = OnlineSoftmax::new(4);
        let mut approx = OnlineSoftmax::with_sas(4, Sas::paper_default());
        exact.update(&s, &v);
        approx.update(&s, &v);
        for (a, b) in exact.finish().iter().zip(approx.finish()) {
            assert!((a - b).abs() < 0.02);
        }
    }

    #[test]
    #[should_panic(expected = "without any unmasked scores")]
    fn finishing_empty_accumulator_panics() {
        OnlineSoftmax::new(2).finish();
    }
}
