//! Degree-3 polynomial approximation of `e^{-t}` on `[0, 1]`.
//!
//! The paper fits `POLY(t) = c₃t³ + c₂t² + c₁t + c₀` by least squares
//! (Equation 15):
//!
//! ```text
//! POLY(t) = −0.1025 t³ + 0.4626 t² − 0.9922 t + 0.9996
//! ```
//!
//! [`PAPER_POLY`] hard-codes those published coefficients; [`fit_exp_poly`]
//! re-derives them from scratch (Figure 5's fit) so the reproduction does
//! not depend on trusting the paper's arithmetic.

use turbo_tensor::round_f16;

/// A cubic polynomial `c₃t³ + c₂t² + c₁t + c₀`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Poly3 {
    /// Coefficients `[c₀, c₁, c₂, c₃]` (constant term first).
    pub coeffs: [f32; 4],
}

/// The paper's published coefficients (Equation 15).
pub const PAPER_POLY: Poly3 = Poly3 {
    coeffs: [0.9996, -0.9922, 0.4626, -0.1025],
};

impl Poly3 {
    /// Evaluates the polynomial in `f32` using Horner's rule.
    #[inline]
    pub fn eval(&self, t: f32) -> f32 {
        let [c0, c1, c2, c3] = self.coeffs;
        ((c3 * t + c2) * t + c1) * t + c0
    }

    /// Evaluates with every intermediate rounded through binary16 — the
    /// numerics of running POLY on FP16 tensor cores, as the paper does.
    #[inline]
    pub fn eval_f16(&self, t: f32) -> f32 {
        let [c0, c1, c2, c3] = self.coeffs.map(round_f16);
        let t = round_f16(t);
        let mut acc = round_f16(c3 * t + c2);
        acc = round_f16(acc * t + c1);
        round_f16(acc * t + c0)
    }

    /// Maximum absolute error against `e^{-t}` over `[0, 1]`, sampled at
    /// `samples + 1` evenly spaced points.
    pub fn max_error_vs_exp(&self, samples: usize) -> f32 {
        (0..=samples)
            .map(|i| {
                let t = i as f32 / samples as f32;
                (self.eval(t) - (-t).exp()).abs()
            })
            .fold(0.0, f32::max)
    }
}

/// Fits a cubic to `e^{-t}` on `[0, 1]` by discrete least squares over
/// `samples + 1` evenly spaced points, solving the 4×4 normal equations by
/// Gaussian elimination with partial pivoting.
///
/// # Panics
///
/// Panics if `samples < 4` (underdetermined fit).
pub fn fit_exp_poly(samples: usize) -> Poly3 {
    assert!(samples >= 4, "need at least 5 sample points");
    // Normal equations: (VᵀV) c = Vᵀy with Vandermonde V[i][j] = t_i^j.
    let mut ata = [[0.0f64; 4]; 4];
    let mut aty = [0.0f64; 4];
    for i in 0..=samples {
        let t = i as f64 / samples as f64;
        let y = (-t).exp();
        let powers = [1.0, t, t * t, t * t * t];
        for r in 0..4 {
            aty[r] += powers[r] * y;
            for c in 0..4 {
                ata[r][c] += powers[r] * powers[c];
            }
        }
    }
    // Gaussian elimination with partial pivoting.
    let mut aug = [[0.0f64; 5]; 4];
    for r in 0..4 {
        aug[r][..4].copy_from_slice(&ata[r]);
        aug[r][4] = aty[r];
    }
    for col in 0..4 {
        let pivot = (col..4)
            .max_by(|&a, &b| aug[a][col].abs().partial_cmp(&aug[b][col].abs()).unwrap())
            .unwrap();
        aug.swap(col, pivot);
        let p = aug[col][col];
        assert!(p.abs() > 1e-12, "singular normal equations");
        for r in 0..4 {
            if r != col {
                let f = aug[r][col] / p;
                let pivot_row = aug[col];
                for (c, cell) in aug[r].iter_mut().enumerate().skip(col) {
                    *cell -= f * pivot_row[c];
                }
            }
        }
    }
    let mut coeffs = [0.0f32; 4];
    for (r, c) in coeffs.iter_mut().enumerate() {
        *c = (aug[r][4] / aug[r][r]) as f32;
    }
    Poly3 { coeffs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_poly_matches_exp_closely() {
        // Figure 5 shows a visually indistinguishable fit; max error of the
        // published coefficients is a few 1e-4.
        let err = PAPER_POLY.max_error_vs_exp(1000);
        assert!(err < 1.5e-3, "paper poly error {err}");
    }

    #[test]
    fn refit_reproduces_paper_coefficients() {
        let fit = fit_exp_poly(1000);
        for (mine, paper) in fit.coeffs.iter().zip(PAPER_POLY.coeffs) {
            assert!(
                (mine - paper).abs() < 5e-3,
                "fit {:?} vs paper {:?}",
                fit.coeffs,
                PAPER_POLY.coeffs
            );
        }
    }

    #[test]
    fn refit_is_at_least_as_good_as_paper() {
        let fit = fit_exp_poly(1000);
        assert!(fit.max_error_vs_exp(997) <= PAPER_POLY.max_error_vs_exp(997) + 1e-5);
    }

    #[test]
    fn endpoints_are_accurate() {
        assert!((PAPER_POLY.eval(0.0) - 1.0).abs() < 1e-3);
        assert!((PAPER_POLY.eval(1.0) - (-1.0f32).exp()).abs() < 1e-3);
    }

    #[test]
    fn f16_evaluation_stays_close_to_f32() {
        for i in 0..=100 {
            let t = i as f32 / 100.0;
            let d = (PAPER_POLY.eval_f16(t) - PAPER_POLY.eval(t)).abs();
            assert!(d < 3e-3, "t={t} diff={d}");
        }
    }

    #[test]
    fn horner_matches_naive_evaluation() {
        let p = Poly3 {
            coeffs: [1.0, -2.0, 3.0, -4.0],
        };
        let t = 0.7f32;
        let naive = 1.0 - 2.0 * t + 3.0 * t * t - 4.0 * t * t * t;
        assert!((p.eval(t) - naive).abs() < 1e-6);
    }

    #[test]
    fn poly_stays_positive_on_domain() {
        // SAS multiplies LUT (positive) by POLY; a negative POLY value
        // would corrupt probabilities. Verify positivity on [0, 1].
        for i in 0..=1000 {
            let t = i as f32 / 1000.0;
            assert!(PAPER_POLY.eval(t) > 0.0, "POLY({t}) ≤ 0");
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn tiny_fit_panics() {
        fit_exp_poly(2);
    }
}
