//! # turbo-softmax
//!
//! Sparse Activated Softmax (SAS, section 4 of the paper) and exact
//! softmax references.
//!
//! FlashAttention performs exponentiation in FP32 on CUDA cores — the paper
//! measures this at over 30 % of attention time because FP32 CUDA
//! throughput is ~3 % of FP16 tensor-core throughput. SAS replaces `e^x`
//! (for the non-positive, max-subtracted scores of online softmax) with
//!
//! ```text
//! e^x = LUT(int(-x)) × POLY(frac(-x))        for n_r ≤ x ≤ 0
//! e^x = 0                                    for x < n_r   (sparsification)
//! ```
//!
//! where `POLY` is a degree-3 least-squares fit of `e^-t` on `[0, 1)`
//! (Equation 15) evaluable in FP16, and the LUT holds the handful of
//! integer powers `e^0 … e^{n_r}`.
//!
//! # Example
//!
//! ```
//! use turbo_softmax::Sas;
//!
//! let sas = Sas::paper_default(); // threshold n_r = −6
//! let approx = sas.exp(-1.5);
//! assert!((approx - (-1.5f32).exp()).abs() < 1e-3);
//! assert_eq!(sas.exp(-10.0), 0.0); // sparsified
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod online;
pub mod poly;
pub mod sas;

pub use exact::{softmax, softmax_in_place};
pub use online::OnlineSoftmax;
pub use poly::{fit_exp_poly, Poly3, PAPER_POLY};
pub use sas::{Sas, SoftmaxError, PAPER_THRESHOLD};
