//! Exact (reference) softmax in `f32`.

use turbo_tensor::Matrix;

/// Numerically stable row-wise softmax, returning a new matrix.
///
/// Each row is shifted by its maximum before exponentiation, so arbitrarily
/// large scores are safe. A row of all `-∞` would produce NaNs; attention
/// score rows always contain at least one finite entry (the diagonal), so
/// this function asserts the invariant instead of silently propagating NaN.
///
/// # Panics
///
/// Panics if any row has no finite maximum.
///
/// # Example
///
/// ```
/// use turbo_tensor::Matrix;
/// use turbo_softmax::softmax;
///
/// let s = softmax(&Matrix::from_rows(&[&[0.0, 0.0]]));
/// assert_eq!(s.row(0), &[0.5, 0.5]);
/// ```
pub fn softmax(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    softmax_in_place(&mut out);
    out
}

/// In-place variant of [`softmax`].
///
/// # Panics
///
/// Panics if any row has no finite maximum.
pub fn softmax_in_place(m: &mut Matrix) {
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert!(max.is_finite(), "softmax row {r} has no finite entry");
        let mut sum = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let s = softmax(&m);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn invariant_to_row_shift() {
        let a = softmax(&Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let b = softmax(&Matrix::from_rows(&[&[101.0, 102.0, 103.0]]));
        for (x, y) in a.row(0).iter().zip(b.row(0)) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn extreme_scores_do_not_overflow() {
        let s = softmax(&Matrix::from_rows(&[&[1e4, 0.0]]));
        assert!((s.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(s.get(0, 1), 0.0);
    }

    #[test]
    fn ordering_preserved() {
        let s = softmax(&Matrix::from_rows(&[&[3.0, 1.0, 2.0]]));
        assert!(s.get(0, 0) > s.get(0, 2));
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn masked_entries_get_zero_probability() {
        // Causal masking uses -inf; softmax must zero them without NaN.
        let s = softmax(&Matrix::from_rows(&[&[0.0, f32::NEG_INFINITY]]));
        assert_eq!(s.row(0), &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "no finite entry")]
    fn all_masked_row_panics() {
        softmax(&Matrix::from_rows(&[&[f32::NEG_INFINITY; 2]]));
    }
}
