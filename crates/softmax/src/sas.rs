//! Sparse Activated Softmax (Algorithm 3).

use crate::poly::{Poly3, PAPER_POLY};
use turbo_tensor::Matrix;

/// The paper's sparsification threshold `n_r = −6`: max-subtracted scores
/// below −6 contribute `e^{-6} ≈ 0.0025` at most and are zeroed.
pub const PAPER_THRESHOLD: i32 = -6;

/// Why a checked softmax could not produce a distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SoftmaxError {
    /// The row has no finite entry (fully masked, or poisoned with
    /// NaN/−Inf throughout), so no distribution exists for it.
    NoFiniteEntry {
        /// Index of the offending row.
        row: usize,
    },
}

impl std::fmt::Display for SoftmaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoftmaxError::NoFiniteEntry { row } => {
                write!(f, "SAS softmax row {row} has no finite entry")
            }
        }
    }
}

impl std::error::Error for SoftmaxError {}

/// The SAS approximate exponential: a small LUT for the integer part of
/// the (negated) exponent and a cubic polynomial for the fractional part.
///
/// Inputs are the *max-subtracted* attention scores of online softmax, so
/// they are always ≤ 0; the approximation domain is `[n_r, 0]` and
/// everything below `n_r` is sparsified to exactly zero.
///
/// # Example
///
/// ```
/// use turbo_softmax::Sas;
/// use turbo_tensor::Matrix;
///
/// let sas = Sas::paper_default();
/// let probs = sas.softmax(&Matrix::from_rows(&[&[2.0, 1.0, -9.0]]));
/// let row = probs.row(0);
/// assert!(row[0] > row[1]);
/// assert_eq!(row[2], 0.0); // 11 below the max: sparsified
/// let sum: f32 = row.iter().sum();
/// assert!((sum - 1.0).abs() < 1e-6);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Sas {
    lut: Vec<f32>,
    poly: Poly3,
    threshold: i32,
    f16_poly: bool,
    exact: bool,
}

impl Sas {
    /// Builds a SAS evaluator with sparsity threshold `threshold` (a
    /// negative integer, e.g. −6) and the given fractional-part polynomial.
    ///
    /// The LUT holds `e^0 … e^{threshold}` — `|threshold| + 1` entries —
    /// which is why aggressive sparsification keeps it register-resident.
    ///
    /// # Panics
    ///
    /// Panics if `threshold >= 0`.
    pub fn new(threshold: i32, poly: Poly3) -> Self {
        assert!(threshold < 0, "threshold must be negative");
        let lut = (0..=(-threshold) as usize)
            .map(|n| (-(n as f32)).exp())
            .collect();
        Self {
            lut,
            poly,
            threshold,
            f16_poly: false,
            exact: false,
        }
    }

    /// The paper's configuration: `n_r = −6`, published Equation 15
    /// coefficients, `f32` polynomial evaluation.
    pub fn paper_default() -> Self {
        Self::new(PAPER_THRESHOLD, PAPER_POLY)
    }

    /// A reference evaluator that computes `e^x` exactly with no
    /// sparsification — used to isolate FlashQ's quantization error from
    /// SAS's approximation error (Table 4's "FlashQ-4bit" row).
    pub fn exact_reference() -> Self {
        let mut sas = Self::new(-87, PAPER_POLY); // e^-87 underflows f32 anyway
        sas.exact = true;
        sas
    }

    /// Whether this evaluator computes `e^x` exactly (reference mode).
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Switches polynomial evaluation to emulated FP16 (tensor-core
    /// numerics). Returns `self` for builder-style chaining.
    pub fn with_f16_poly(mut self, enabled: bool) -> Self {
        self.f16_poly = enabled;
        self
    }

    /// The sparsification threshold `n_r`.
    pub fn threshold(&self) -> i32 {
        self.threshold
    }

    /// The lookup table `e^0 … e^{n_r}`.
    pub fn lut(&self) -> &[f32] {
        &self.lut
    }

    /// Approximates `e^x` for a max-subtracted score `x ≤ 0`.
    ///
    /// Scores below the threshold return exactly 0 (sparsification).
    /// Small positive inputs (floating-point jitter around the row max)
    /// are clamped to 0. NaN returns 0 — a poisoned score contributes
    /// nothing, like a masked entry. (Without the explicit check,
    /// `NaN.min(0.0)` is `0.0` in Rust, so a NaN score would silently
    /// act like the row *maximum* and receive weight ≈ 1.)
    #[inline]
    pub fn exp(&self, x: f32) -> f32 {
        if x.is_nan() {
            return 0.0;
        }
        let x = x.min(0.0);
        if self.exact {
            return x.exp();
        }
        if x < self.threshold as f32 {
            return 0.0;
        }
        let t = -x;
        let n = t as usize; // floor for non-negative t
        let frac = t - n as f32;
        let p = if self.f16_poly {
            self.poly.eval_f16(frac)
        } else {
            self.poly.eval(frac)
        };
        self.lut[n] * p
    }

    /// Element-wise SAS over a matrix of max-subtracted scores.
    pub fn exp_matrix(&self, m: &Matrix) -> Matrix {
        m.map(|x| self.exp(x))
    }

    /// Whether the vectorized tile-exp arm may serve this evaluator:
    /// `f32` polynomial (the f16-emulation mode rounds every Horner step
    /// through binary16, which the vector arm does not replicate) and
    /// non-exact mode. The LUT-size bound (≤ 8 entries, i.e.
    /// `n_r ≥ −7`, so the table fits one 256-bit register) is enforced
    /// by the kernel itself, which declines oversized tables.
    #[inline]
    fn simd_eligible(&self) -> bool {
        !self.exact && !self.f16_poly
    }

    /// Evaluates [`Sas::exp`] over a whole score row at once: writes
    /// `exp(scores[j] - m_new)` into `out[j]` and returns the
    /// left-to-right f32 sum of the probabilities.
    ///
    /// This is the fused-kernel form used by the decode hot path — one
    /// pass over the tile, dispatched to the vectorized SAS arm
    /// ([`turbo_tensor::simd`]) when the evaluator qualifies, else a
    /// scalar loop with a threshold-skip short-circuit that avoids the
    /// LUT/polynomial for sparsified entries. The output and the sum are
    /// bit-identical to calling [`Sas::exp`] per element and
    /// accumulating in order — on *every* arm: `x < n_r` is false for
    /// NaN, so poisoned scores still get exactly 0, and kept entries
    /// take the identical LUT×POLY operation sequence (the vector arm
    /// uses no FMA contraction).
    ///
    /// # Panics
    ///
    /// Panics if `scores` and `out` differ in length.
    pub fn exp_row_into(&self, scores: &[f32], m_new: f32, out: &mut [f32]) -> f32 {
        assert_eq!(scores.len(), out.len(), "score/probability length mismatch");
        let mut sum = 0.0f32;
        if self.exact {
            for (o, &sv) in out.iter_mut().zip(scores) {
                let p = self.exp(sv - m_new);
                *o = p;
                sum += p;
            }
            return sum;
        }
        if self.simd_eligible()
            && turbo_tensor::simd::sas_exp_row_on(
                turbo_tensor::simd_level(),
                scores,
                m_new,
                self.threshold as f32,
                &self.lut,
                self.poly.coeffs,
                out,
            )
        {
            // Same values in the same order as the scalar loop's
            // interleaved accumulation -> bit-identical sum.
            for &p in out.iter() {
                sum += p;
            }
            return sum;
        }
        let thr = self.threshold as f32;
        for (o, &sv) in out.iter_mut().zip(scores) {
            let x = sv - m_new;
            let p = if x < thr { 0.0 } else { self.exp(x) };
            *o = p;
            sum += p;
        }
        sum
    }

    /// As [`Sas::exp_row_into`], fused with the integer-score epilogue of
    /// the quantized attention kernels: the row arrives as raw `i32`
    /// QK^T sums plus their dequantization scale, and each element
    /// evaluates `exp(codes[j] as f32 * s_scale - m_new)`. The score
    /// tile never materializes as an `f32` buffer — the convert,
    /// dequantize-scale, max-subtract, and SAS exponential all happen
    /// in registers.
    ///
    /// Bit-identical to dequantizing into a temporary and calling
    /// [`Sas::exp_row_into`] on it, on every dispatch arm.
    ///
    /// # Panics
    ///
    /// Panics if `codes` and `out` differ in length.
    pub fn exp_scaled_row_into(
        &self,
        codes: &[i32],
        s_scale: f32,
        m_new: f32,
        out: &mut [f32],
    ) -> f32 {
        assert_eq!(codes.len(), out.len(), "score/probability length mismatch");
        let mut sum = 0.0f32;
        if self.exact {
            for (o, &cv) in out.iter_mut().zip(codes) {
                let p = self.exp(cv as f32 * s_scale - m_new);
                *o = p;
                sum += p;
            }
            return sum;
        }
        if self.simd_eligible()
            && turbo_tensor::simd::sas_exp_scaled_row_on(
                turbo_tensor::simd_level(),
                codes,
                s_scale,
                m_new,
                self.threshold as f32,
                &self.lut,
                self.poly.coeffs,
                out,
            )
        {
            for &p in out.iter() {
                sum += p;
            }
            return sum;
        }
        let thr = self.threshold as f32;
        for (o, &cv) in out.iter_mut().zip(codes) {
            let x = cv as f32 * s_scale - m_new;
            let p = if x < thr { 0.0 } else { self.exp(x) };
            *o = p;
            sum += p;
        }
        sum
    }

    /// Full Algorithm 3: row-max subtraction, sparsification, LUT×POLY
    /// exponentiation, and row-sum normalization.
    ///
    /// # Panics
    ///
    /// Panics if any row has no finite maximum (fully masked row).
    /// [`Sas::try_softmax`] is the non-panicking equivalent.
    pub fn softmax(&self, scores: &Matrix) -> Matrix {
        match self.try_softmax(scores) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking [`Sas::softmax`]. Rows containing *some* NaN/±Inf
    /// entries still normalize — the poisoned entries get weight 0, like
    /// masked positions — but a row with no finite entry at all is an
    /// error because no distribution exists for it.
    ///
    /// # Errors
    ///
    /// [`SoftmaxError::NoFiniteEntry`] naming the first fully-poisoned
    /// row.
    pub fn try_softmax(&self, scores: &Matrix) -> Result<Matrix, SoftmaxError> {
        let mut out = scores.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            // f32::max skips NaN operands, so a finite max is found even
            // in partially poisoned rows.
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if !max.is_finite() {
                return Err(SoftmaxError::NoFiniteEntry { row: r });
            }
            let mut sum = 0.0f32;
            for x in row.iter_mut() {
                *x = self.exp(*x - max);
                sum += *x;
            }
            // The max entry always yields POLY(0) ≈ 1 > 0, so sum > 0.
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        Ok(out)
    }

    /// Maximum absolute error of [`Sas::exp`] against `e^x` over the live
    /// domain `[n_r, 0]`, sampled at `samples + 1` points.
    pub fn max_error_vs_exp(&self, samples: usize) -> f32 {
        (0..=samples)
            .map(|i| {
                let x = self.threshold as f32 * i as f32 / samples as f32;
                (self.exp(x) - x.exp()).abs()
            })
            .fold(0.0, f32::max)
    }

    /// Fraction of entries a matrix of max-subtracted scores would have
    /// sparsified to zero — the "sparsity" knob behind SAS's name.
    pub fn sparsity(&self, scores: &Matrix) -> f64 {
        if scores.is_empty() {
            return 0.0;
        }
        let mut zeroed = 0usize;
        for r in 0..scores.rows() {
            let max = scores
                .row(r)
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max);
            zeroed += scores
                .row(r)
                .iter()
                .filter(|&&x| x - max < self.threshold as f32)
                .count();
        }
        zeroed as f64 / scores.len() as f64
    }
}

impl Default for Sas {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::TensorRng;

    #[test]
    fn exp_accuracy_on_domain() {
        let sas = Sas::paper_default();
        let err = sas.max_error_vs_exp(10_000);
        assert!(err < 1.5e-3, "SAS exp error {err}");
    }

    #[test]
    fn exp_at_zero_is_nearly_one() {
        let sas = Sas::paper_default();
        assert!((sas.exp(0.0) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn sparsification_below_threshold() {
        let sas = Sas::paper_default();
        assert_eq!(sas.exp(-6.001), 0.0);
        assert_eq!(sas.exp(-100.0), 0.0);
        assert!(sas.exp(-6.0) > 0.0); // exactly at the threshold is kept
        assert_eq!(sas.exp(f32::NEG_INFINITY), 0.0);
    }

    #[test]
    fn positive_jitter_clamps_to_zero_exponent() {
        let sas = Sas::paper_default();
        assert_eq!(sas.exp(1e-6), sas.exp(0.0));
    }

    #[test]
    fn integer_points_hit_lut_times_poly0() {
        let sas = Sas::paper_default();
        for n in 0..=6 {
            let x = -(n as f32);
            let expect = (x.exp()) * PAPER_POLY.eval(0.0);
            assert!((sas.exp(x) - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let sas = Sas::paper_default();
        let mut rng = TensorRng::new(1);
        let scores = rng.normal(8, 32, 0.0, 3.0);
        let p = sas.softmax(&scores);
        for r in 0..8 {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(p.row(r).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn softmax_close_to_exact() {
        let sas = Sas::paper_default();
        let mut rng = TensorRng::new(2);
        let scores = rng.normal(16, 64, 0.0, 2.0);
        let approx = sas.softmax(&scores);
        let exact = crate::exact::softmax(&scores);
        // Sparsification zeroes tail probabilities < e^-6 ≈ 2.5e-3 each;
        // renormalization over a 64-wide row concentrates the removed mass
        // onto the head, so the element-wise deviation is ~1e-2.
        assert!(turbo_tensor::max_abs_error(&approx, &exact) < 2e-2);
    }

    #[test]
    fn softmax_preserves_argmax() {
        let sas = Sas::paper_default();
        let mut rng = TensorRng::new(3);
        for _ in 0..20 {
            let scores = rng.normal(1, 50, 0.0, 4.0);
            let exact = crate::exact::softmax(&scores);
            let approx = sas.softmax(&scores);
            let am = |m: &Matrix| {
                m.row(0)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0
            };
            assert_eq!(am(&exact), am(&approx));
        }
    }

    #[test]
    fn sparsity_measures_tail_mass() {
        let sas = Sas::paper_default();
        // One dominant score, everything else 10 below -> all but one zeroed.
        let mut scores = Matrix::filled(1, 100, -10.0);
        scores.set(0, 0, 0.0);
        assert!((sas.sparsity(&scores) - 0.99).abs() < 1e-9);
    }

    #[test]
    fn wider_threshold_reduces_error() {
        let tight = Sas::new(-3, PAPER_POLY);
        let wide = Sas::new(-9, PAPER_POLY);
        // At x = -4: tight zeroes it (error e^-4), wide approximates it.
        let x = -4.0f32;
        assert_eq!(tight.exp(x), 0.0);
        assert!((wide.exp(x) - x.exp()).abs() < 1e-3);
    }

    #[test]
    fn f16_poly_mode_stays_accurate() {
        let sas = Sas::paper_default().with_f16_poly(true);
        let err = sas.max_error_vs_exp(1000);
        assert!(err < 4e-3, "f16 SAS error {err}");
    }

    #[test]
    fn exact_reference_matches_std_exp() {
        let sas = Sas::exact_reference();
        assert!(sas.is_exact());
        for i in 0..200 {
            let x = -(i as f32) * 0.25;
            assert_eq!(sas.exp(x), x.exp());
        }
        // No sparsification inside f32 range.
        assert!(sas.exp(-50.0) > 0.0);
    }

    #[test]
    fn lut_size_tracks_threshold() {
        assert_eq!(Sas::paper_default().lut().len(), 7);
        assert_eq!(Sas::new(-3, PAPER_POLY).lut().len(), 4);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn non_negative_threshold_panics() {
        Sas::new(0, PAPER_POLY);
    }

    #[test]
    fn nan_score_gets_zero_weight() {
        let sas = Sas::paper_default();
        assert_eq!(sas.exp(f32::NAN), 0.0);
        // In exact-reference mode too.
        assert_eq!(Sas::exact_reference().exp(f32::NAN), 0.0);
    }

    #[test]
    fn try_softmax_rejects_fully_poisoned_rows() {
        let sas = Sas::paper_default();
        let all_nan = Matrix::filled(2, 3, f32::NAN);
        assert_eq!(
            sas.try_softmax(&all_nan),
            Err(SoftmaxError::NoFiniteEntry { row: 0 })
        );
        let mut masked = Matrix::filled(3, 4, 0.0);
        for c in 0..4 {
            masked.set(1, c, f32::NEG_INFINITY);
        }
        assert_eq!(
            sas.try_softmax(&masked),
            Err(SoftmaxError::NoFiniteEntry { row: 1 })
        );
    }

    #[test]
    #[should_panic(expected = "no finite entry")]
    fn softmax_still_panics_on_masked_row() {
        Sas::paper_default().softmax(&Matrix::filled(1, 4, f32::NEG_INFINITY));
    }

    /// Next f32 toward −∞ (larger magnitude for negative inputs).
    fn next_below(x: f32) -> f32 {
        assert!(x < 0.0 && x.is_finite());
        f32::from_bits(x.to_bits() + 1)
    }

    /// Next f32 toward 0 (smaller magnitude for negative inputs).
    fn next_above(x: f32) -> f32 {
        assert!(x < 0.0 && x.is_finite());
        f32::from_bits(x.to_bits() - 1)
    }

    #[test]
    fn threshold_boundary_is_kept_exactly_at_n_r() {
        // A score exactly at the sparsity threshold n_r must be *kept*
        // (the LUT holds |n_r|+1 entries precisely so e^{n_r} exists);
        // one ULP below must sparsify to exactly 0. Pin this for several
        // thresholds so an off-by-one in either the comparison or the
        // LUT sizing cannot creep back in.
        for thr in [-1i32, -3, -6, -9] {
            let sas = Sas::new(thr, PAPER_POLY);
            let at = thr as f32;
            let expect = at.exp() * PAPER_POLY.eval(0.0);
            assert!(
                (sas.exp(at) - expect).abs() < 1e-6,
                "x = n_r = {thr} must hit lut[{}]*poly(0)",
                -thr
            );
            assert!(sas.exp(at) > 0.0, "x = n_r = {thr} must not sparsify");
            assert_eq!(
                sas.exp(next_below(at)),
                0.0,
                "one ULP below n_r = {thr} must sparsify"
            );
            assert!(
                sas.exp(next_above(at)) > 0.0,
                "one ULP above n_r = {thr} must be kept"
            );
        }
    }

    #[test]
    fn exp_matrix_sparsifies_identically_to_exp_at_the_boundary() {
        let sas = Sas::paper_default();
        let thr = sas.threshold() as f32;
        let probes = [
            0.0,
            thr,
            next_below(thr),
            next_above(thr),
            thr + 0.5,
            thr - 0.5,
            f32::NEG_INFINITY,
        ];
        let m = Matrix::from_rows(&[&probes]);
        let out = sas.exp_matrix(&m);
        for (j, &x) in probes.iter().enumerate() {
            assert_eq!(
                out.get(0, j),
                sas.exp(x),
                "exp_matrix diverged from exp at x = {x}"
            );
        }
        // And the boundary semantics themselves: kept at n_r, zero below.
        assert!(out.get(0, 1) > 0.0);
        assert_eq!(out.get(0, 2), 0.0);
    }

    #[test]
    fn softmax_and_sparsity_agree_with_exp_at_the_boundary() {
        let sas = Sas::paper_default();
        let thr = sas.threshold() as f32;
        // Max-subtracted scores: max 0, one entry exactly at n_r, one a
        // single ULP below.
        let scores = Matrix::from_rows(&[&[0.0, thr, next_below(thr)]]);
        let p = sas.softmax(&scores);
        assert!(p.get(0, 1) > 0.0, "entry exactly at n_r keeps weight");
        assert_eq!(p.get(0, 2), 0.0, "entry one ULP below n_r is zeroed");
        // sparsity() counts with the same strict `<`: exactly 1 of 3.
        let frac = sas.sparsity(&scores);
        assert!((frac - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn exp_row_into_is_bit_identical_to_per_element_exp() {
        let thr = PAPER_THRESHOLD as f32;
        let probes = [
            0.0,
            -1.3,
            thr,
            next_below(thr),
            next_above(thr),
            -42.0,
            f32::NEG_INFINITY,
            f32::NAN,
            0.7, // positive jitter above the row max
        ];
        let mut rng = TensorRng::new(17);
        for sas in [
            Sas::paper_default(),
            Sas::paper_default().with_f16_poly(true),
            Sas::exact_reference(),
        ] {
            for m_new in [0.0f32, 2.5, -1.0] {
                let mut scores: Vec<f32> = probes.to_vec();
                scores.extend(rng.normal(1, 32, 0.0, 4.0).as_slice());
                let mut out = vec![f32::NAN; scores.len()];
                let sum = sas.exp_row_into(&scores, m_new, &mut out);
                let mut expect_sum = 0.0f32;
                for (j, &sv) in scores.iter().enumerate() {
                    let p = sas.exp(sv - m_new);
                    assert!(
                        out[j] == p || (out[j].is_nan() && p.is_nan()),
                        "exp_row_into diverged at score {sv} (m_new {m_new})"
                    );
                    expect_sum += p;
                }
                assert_eq!(sum.to_bits(), expect_sum.to_bits());
            }
        }
    }

    #[test]
    fn exp_scaled_row_into_is_bit_identical_to_dequantize_then_exp() {
        // The fused integer-score path must match dequantizing into a
        // temporary f32 row and running the plain path — bitwise, on
        // whichever dispatch arm is live — for every evaluator flavor
        // (vector-eligible, f16-poly scalar fallback, exact reference).
        let mut codes: Vec<i32> = vec![0, 1, -1, i32::MIN / 2, i32::MAX / 2];
        codes.extend((0..67).map(|j| (j * 7919 % 40001) - 20000));
        for sas in [
            Sas::paper_default(),
            Sas::new(-9, PAPER_POLY), // LUT too big for a register: scalar
            Sas::paper_default().with_f16_poly(true),
            Sas::exact_reference(),
        ] {
            for (s_scale, m_new) in [(3.1e-4f32, 0.0f32), (0.017, 4.2), (1.0, -2.0)] {
                let dequant: Vec<f32> =
                    codes.iter().map(|&c| c as f32 * s_scale).collect();
                let mut via_f32 = vec![f32::NAN; codes.len()];
                let sum_f32 = sas.exp_row_into(&dequant, m_new, &mut via_f32);
                let mut fused = vec![f32::NAN; codes.len()];
                let sum_fused = sas.exp_scaled_row_into(&codes, s_scale, m_new, &mut fused);
                for (j, (&a, &b)) in fused.iter().zip(&via_f32).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "fused diverged at code {} (scale {s_scale}, m_new {m_new})",
                        codes[j]
                    );
                }
                assert_eq!(sum_fused.to_bits(), sum_f32.to_bits());
            }
        }
    }

    #[test]
    fn partially_poisoned_row_still_normalizes() {
        let sas = Sas::paper_default();
        let scores = Matrix::from_rows(&[&[1.0, f32::NAN, 2.0, f32::NEG_INFINITY]]);
        let p = sas.try_softmax(&scores).unwrap();
        let row = p.row(0);
        assert_eq!(row[1], 0.0, "NaN entry must get zero weight");
        assert_eq!(row[3], 0.0, "-Inf entry must get zero weight");
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(row[2] > row[0], "healthy entries keep their ordering");
    }
}
