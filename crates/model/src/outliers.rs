//! Channel-outlier injection (the Figure 4 / Appendix D structure).
//!
//! Real query/key tensors have a few channels whose magnitude dwarfs the
//! rest; Phi-3's value cache shows the same along channels. This module
//! provides the diagonal transform `D` behind the model profiles'
//! *anisotropic embeddings* (`normalize(D·e)` for keys, raw `D·e` for
//! values — see `profile`): the amplified channels carry concentrated
//! signal, so quantization error in them costs real accuracy. The paired
//! `apply`/`apply_inverse` pair is also kept for score-invariance tests
//! (`⟨D⁻¹q, Dk⟩ = ⟨q, k⟩`).

use turbo_tensor::{Matrix, TensorRng};

/// A diagonal channel transform with a few amplified channels.
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelOutliers {
    diag: Vec<f32>,
}

impl ChannelOutliers {
    /// Identity transform (no outliers).
    pub fn identity(d: usize) -> Self {
        Self { diag: vec![1.0; d] }
    }

    /// Amplifies `count` randomly chosen channels by factors drawn
    /// uniformly from `[scale/2, scale]`.
    ///
    /// # Panics
    ///
    /// Panics if `count > d` or `scale < 1.0`.
    pub fn random(d: usize, count: usize, scale: f32, rng: &mut TensorRng) -> Self {
        assert!(count <= d, "more outlier channels than channels");
        assert!(scale >= 1.0, "outlier scale must be ≥ 1");
        let mut diag = vec![1.0f32; d];
        for c in rng.distinct_indices(d, count) {
            diag[c] = rng.uniform_value(scale * 0.5, scale);
        }
        Self { diag }
    }

    /// Channel dimension.
    pub fn dim(&self) -> usize {
        self.diag.len()
    }

    /// The diagonal entries.
    pub fn diagonal(&self) -> &[f32] {
        &self.diag
    }

    /// Whether this is the identity transform.
    pub fn is_identity(&self) -> bool {
        self.diag.iter().all(|&x| x == 1.0)
    }

    /// Applies `D` to every row of `m` (scales columns).
    ///
    /// # Panics
    ///
    /// Panics if `m.cols() != dim()`.
    pub fn apply(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.cols(), self.dim(), "channel mismatch");
        Matrix::from_fn(m.rows(), m.cols(), |r, c| m.get(r, c) * self.diag[c])
    }

    /// Applies `D⁻¹` to every row of `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m.cols() != dim()`.
    pub fn apply_inverse(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.cols(), self.dim(), "channel mismatch");
        Matrix::from_fn(m.rows(), m.cols(), |r, c| m.get(r, c) / self.diag[c])
    }

    /// Applies `D` to a single row vector.
    pub fn apply_row(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.dim(), "channel mismatch");
        row.iter().zip(&self.diag).map(|(x, d)| x * d).collect()
    }

    /// Applies `D⁻¹` to a single row vector.
    pub fn apply_inverse_row(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.dim(), "channel mismatch");
        row.iter().zip(&self.diag).map(|(x, d)| x / d).collect()
    }

    /// Applies `D` to every row of `m` and re-normalizes each row to unit
    /// length — the *anisotropic embedding* construction: signal energy
    /// concentrates in the amplified channels, so those channels carry
    /// real information (and quantization error there costs accuracy),
    /// exactly like the outlier channels of real transformer heads.
    ///
    /// # Panics
    ///
    /// Panics if `m.cols() != dim()` or a row transforms to zero.
    pub fn apply_and_renormalize(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.cols(), self.dim(), "channel mismatch");
        let mut out = self.apply(m);
        for r in 0..out.rows() {
            let norm: f32 = out.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(norm > 0.0, "row {r} collapsed to zero");
            for v in out.row_mut(r) {
                *v /= norm;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::matmul_transposed_b;

    #[test]
    fn identity_is_noop() {
        let t = ChannelOutliers::identity(4);
        assert!(t.is_identity());
        let m = TensorRng::new(1).normal(3, 4, 0.0, 1.0);
        assert_eq!(t.apply(&m), m);
        assert_eq!(t.apply_inverse(&m), m);
    }

    #[test]
    fn scores_are_invariant_under_paired_transform() {
        // <D^-1 q, D k> == <q, k> exactly in f32 only up to rounding; check
        // to tight tolerance.
        let mut rng = TensorRng::new(2);
        let t = ChannelOutliers::random(16, 3, 20.0, &mut rng);
        let q = rng.normal(4, 16, 0.0, 1.0);
        let k = rng.normal(8, 16, 0.0, 1.0);
        let plain = matmul_transposed_b(&q, &k);
        let twisted = matmul_transposed_b(&t.apply_inverse(&q), &t.apply(&k));
        assert!(turbo_tensor::max_abs_error(&plain, &twisted) < 1e-4);
    }

    #[test]
    fn outlier_channels_have_amplified_range() {
        let mut rng = TensorRng::new(3);
        let t = ChannelOutliers::random(32, 4, 25.0, &mut rng);
        let outliers: Vec<usize> = (0..32).filter(|&c| t.diagonal()[c] > 1.0).collect();
        assert_eq!(outliers.len(), 4);
        let m = t.apply(&rng.normal(128, 32, 0.0, 1.0));
        let ranges = turbo_tensor::col_max_min(&m);
        for &c in &outliers {
            let gap = ranges[c].0 - ranges[c].1;
            // Any non-outlier channel should have a much smaller range.
            let plain = (0..32).find(|c| t.diagonal()[*c] == 1.0).unwrap();
            let plain_gap = ranges[plain].0 - ranges[plain].1;
            assert!(gap > 3.0 * plain_gap, "channel {c}: {gap} vs {plain_gap}");
        }
    }

    #[test]
    fn apply_row_matches_matrix_apply() {
        let mut rng = TensorRng::new(4);
        let t = ChannelOutliers::random(8, 2, 10.0, &mut rng);
        let m = rng.normal(1, 8, 0.0, 1.0);
        assert_eq!(t.apply(&m).row(0), &t.apply_row(m.row(0))[..]);
        let inv = t.apply_inverse_row(&t.apply_row(m.row(0)));
        for (a, b) in inv.iter().zip(m.row(0)) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn dimension_mismatch_panics() {
        ChannelOutliers::identity(4).apply(&Matrix::zeros(2, 5));
    }
}
