//! The accuracy-evaluation harness behind Tables 2–5 and Figure 7b.

use crate::backend::Backend;
use crate::profile::ModelProfile;
use crate::tasks::{RecallEpisode, TaskSuite};
use turbo_tensor::TensorRng;

/// Evaluation configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalConfig {
    /// Episodes per (profile, suite, backend) cell.
    pub episodes: usize,
    /// Base seed; episode `i` derives its own deterministic stream, so
    /// every backend sees the *same* episode sequence.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            episodes: 100,
            seed: 0xE7A1,
        }
    }
}

/// Accuracy of one evaluation cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalResult {
    /// Correct episodes / total episodes.
    pub accuracy: f64,
    /// Episodes answered correctly end-to-end.
    pub correct: usize,
    /// Episodes evaluated.
    pub episodes: usize,
}

/// Runs `cfg.episodes` multi-hop recall episodes of `suite` on `profile`
/// under `backend`, scoring end-of-chain exact match (the CoT analogue of
/// extracting the final answer from 256 generated tokens).
///
/// Episodes are independent and derive their randomness purely from
/// `(seed, suite, index)`, so they are evaluated as chunked tasks on the
/// shared [`turbo_runtime`] pool; the chunk size is fixed (worker-count
/// independent) and per-chunk counts sum in index order, so results are
/// identical to a serial sweep.
pub fn evaluate(
    backend: &dyn Backend,
    profile: &ModelProfile,
    suite: &TaskSuite,
    cfg: &EvalConfig,
) -> EvalResult {
    evaluate_on(turbo_runtime::global(), backend, profile, suite, cfg)
}

/// As [`evaluate`], but on an explicit runtime (worker-count equivalence
/// tests).
pub fn evaluate_on(
    rt: &turbo_runtime::Runtime,
    backend: &dyn Backend,
    profile: &ModelProfile,
    suite: &TaskSuite,
    cfg: &EvalConfig,
) -> EvalResult {
    // Fixed chunk size: the task partition depends only on the episode
    // count, never on how many workers happen to exist.
    const EPISODE_CHUNK: usize = 8;
    let correct: usize = rt
        .par_tiles(cfg.episodes, EPISODE_CHUNK, |range| {
            range
                .filter(|&i| run_episode(backend, profile, suite, cfg.seed, i as u64))
                .count()
        })
        .into_iter()
        .sum();
    EvalResult {
        accuracy: correct as f64 / cfg.episodes.max(1) as f64,
        correct,
        episodes: cfg.episodes,
    }
}

/// Runs one episode; returns whether the final chain symbol was correct.
fn run_episode(
    backend: &dyn Backend,
    profile: &ModelProfile,
    suite: &TaskSuite,
    seed: u64,
    index: u64,
) -> bool {
    // Episode stream is a pure function of (seed, suite, index) so every
    // backend faces identical tasks and noise.
    let episode_seed = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index)
        .wrapping_add(suite.n_pairs as u64 * 31 + suite.hops as u64);
    let mut rng = TensorRng::new(episode_seed);
    let ep = RecallEpisode::generate_clustered(
        &mut rng,
        profile.vocab_size(),
        profile.cluster_size(),
        suite.n_pairs,
        suite.hops,
        suite.confusers,
    );
    let (ks, vs) = profile.episode_tensors(&ep, &mut rng);
    let prepared = backend.prepare(&ks, &vs);

    let mut cur = ep.cue;
    for _ in 0..ep.hops {
        let qs = profile.query_rows(cur);
        let outs = prepared.query(&qs);
        cur = profile.decode(&outs);
    }
    cur == ep.answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Fp16Backend, GearBackend, KiviBackend, TurboBackend};
    use turbo_quant::BitWidth;

    fn quick() -> EvalConfig {
        EvalConfig {
            episodes: 24,
            seed: 42,
        }
    }

    #[test]
    fn fp16_accuracy_is_paper_like_on_every_profile() {
        // Table 2's FP16 rows sit between ~46% and ~85%; the proxies are
        // calibrated to the same regime (high but not saturated).
        let suite = TaskSuite::gsm8k_proxy();
        for p in ModelProfile::paper_profiles() {
            let r = evaluate(&Fp16Backend, &p, &suite, &quick());
            assert!(
                (0.45..=1.0).contains(&r.accuracy),
                "{}: FP16 accuracy {}",
                p.name(),
                r.accuracy
            );
        }
    }

    #[test]
    fn turbo_int4_is_near_lossless() {
        let p = ModelProfile::llama3_like();
        let suite = TaskSuite::aqua_proxy();
        let fp16 = evaluate(&Fp16Backend, &p, &suite, &quick());
        let turbo = evaluate(&TurboBackend::int4(), &p, &suite, &quick());
        assert!(
            turbo.accuracy >= fp16.accuracy - 0.15,
            "turbo {} vs fp16 {}",
            turbo.accuracy,
            fp16.accuracy
        );
    }

    #[test]
    fn two_bit_degrades_more_than_four_bit() {
        let p = ModelProfile::qwen2_like();
        let suite = TaskSuite::gsm8k_proxy();
        let t4 = evaluate(&TurboBackend::int4(), &p, &suite, &quick());
        let t2 = evaluate(&TurboBackend::int2(), &p, &suite, &quick());
        assert!(
            t4.accuracy >= t2.accuracy,
            "int4 {} should be ≥ int2 {}",
            t4.accuracy,
            t2.accuracy
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let p = ModelProfile::phi3_like();
        let suite = TaskSuite::bbh_proxy();
        let b = KiviBackend::new(BitWidth::Int4);
        let a = evaluate(&b, &p, &suite, &quick());
        let c = evaluate(&b, &p, &suite, &quick());
        assert_eq!(a, c);
    }

    #[test]
    fn same_episodes_for_all_backends() {
        // Episode generation must not depend on the backend: two different
        // backends at FP16-equivalent precision decode the same chains.
        let p = ModelProfile::llama3_like();
        let suite = TaskSuite::bbh_proxy();
        let fp16 = evaluate(&Fp16Backend, &p, &suite, &quick());
        let gear8 = evaluate(&GearBackend::new(BitWidth::Int8), &p, &suite, &quick());
        // INT8 GEAR is near-exact, so results should match FP16 closely.
        assert!((fp16.accuracy - gear8.accuracy).abs() <= 0.1);
    }

    #[test]
    fn identical_across_worker_counts() {
        let p = ModelProfile::phi3_like();
        let suite = TaskSuite::gsm8k_proxy();
        let b = TurboBackend::int4();
        let baseline = evaluate(&b, &p, &suite, &quick());
        for workers in [1usize, 2, 8] {
            let rt = turbo_runtime::Runtime::with_workers(workers);
            let r = evaluate_on(&rt, &b, &p, &suite, &quick());
            assert_eq!(baseline, r, "{workers} workers diverged");
        }
    }

    #[test]
    fn zero_episodes_is_safe() {
        let p = ModelProfile::llama3_like();
        let r = evaluate(
            &Fp16Backend,
            &p,
            &TaskSuite::gsm8k_proxy(),
            &EvalConfig {
                episodes: 0,
                seed: 1,
            },
        );
        assert_eq!(r.accuracy, 0.0);
        assert_eq!(r.episodes, 0);
    }
}
