//! Pluggable attention backends — one per row of Table 2 / Table 4.
//!
//! A backend turns per-head `(K, V)` tensors into a prepared (possibly
//! compressed) cache once, then serves any number of single-row queries
//! against it. The baselines' window/group sizes are scaled to the
//! synthetic context so the full-precision residual protects the same
//! ~6 % of tokens it does in the paper's 1k-token runs, preserving each
//! method's accuracy mechanism at this scale.

use turbo_attention::{
    select_two_bit_heads, turbo_attend_cache, HeadStats, Masking, SelectionMethod, TurboConfig,
};
use turbo_baselines::{
    Fp16Cache, Fp8Cache, GearCache, GearConfig, KiviCache, KiviConfig, KvCompressor,
};
use turbo_kvcache::{HeadKvCache, KvCacheConfig};
use turbo_quant::BitWidth;
use turbo_softmax::Sas;
use turbo_tensor::{matmul_f16, Matrix};

/// A prepared per-episode attention cache serving single-row queries.
pub trait PreparedAttention {
    /// Attends one query row per head, returning one output row per head.
    fn query(&self, qs: &[Vec<f32>]) -> Vec<Vec<f32>>;
}

/// An attention method under evaluation.
///
/// `Sync` is required so the evaluation harness can fan episodes out
/// across threads; backends are immutable after construction.
pub trait Backend: Sync {
    /// Row label, e.g. `"TurboAttention(mixed)"`.
    fn name(&self) -> String;

    /// Average KV-cache bits label for the table's "Bit" column.
    fn bits_label(&self) -> String;

    /// Builds the per-episode cache from per-head `(K, V)` tensors.
    fn prepare(&self, ks: &[Matrix], vs: &[Matrix]) -> Box<dyn PreparedAttention>;
}

/// Exact FP16 attention for one query row (the kernel every dequantizing
/// baseline ultimately runs).
fn attend_f16(q: &[f32], k: &Matrix, v: &Matrix) -> Vec<f32> {
    let qm = Matrix::from_vec(1, q.len(), q.to_vec());
    turbo_attention::flash_attention_f16(&qm, k, v, Masking::Full, 1, 64)
        .row(0)
        .to_vec()
}

// ---------------------------------------------------------------- FP16 --

/// The dense FP16 baseline.
#[derive(Clone, Debug, Default)]
pub struct Fp16Backend;

struct PreparedFp16 {
    kv: Vec<(Matrix, Matrix)>,
}

impl Backend for Fp16Backend {
    fn name(&self) -> String {
        "FP16".into()
    }

    fn bits_label(&self) -> String {
        "16".into()
    }

    fn prepare(&self, ks: &[Matrix], vs: &[Matrix]) -> Box<dyn PreparedAttention> {
        let kv = ks
            .iter()
            .zip(vs)
            .map(|(k, v)| {
                let mut cache = Fp16Cache::new(k.cols());
                for t in 0..k.rows() {
                    cache.append(k.row(t), v.row(t));
                }
                cache.materialize()
            })
            .collect();
        Box::new(PreparedFp16 { kv })
    }
}

impl PreparedAttention for PreparedFp16 {
    fn query(&self, qs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        qs.iter()
            .zip(&self.kv)
            .map(|(q, (k, v))| attend_f16(q, k, v))
            .collect()
    }
}

// -------------------------------------------------------------- SAS-only --

/// FP16 K/V with SAS softmax — isolates the softmax approximation
/// (Table 4's "SAS" row).
#[derive(Clone, Debug)]
pub struct SasOnlyBackend {
    sas: Sas,
}

impl Default for SasOnlyBackend {
    fn default() -> Self {
        Self {
            sas: Sas::paper_default(),
        }
    }
}

struct PreparedSasOnly {
    kv: Vec<(Matrix, Matrix)>,
    sas: Sas,
}

impl Backend for SasOnlyBackend {
    fn name(&self) -> String {
        "SAS".into()
    }

    fn bits_label(&self) -> String {
        "16".into()
    }

    fn prepare(&self, ks: &[Matrix], vs: &[Matrix]) -> Box<dyn PreparedAttention> {
        let kv = ks
            .iter()
            .zip(vs)
            .map(|(k, v)| {
                (
                    k.map(turbo_tensor::round_f16),
                    v.map(turbo_tensor::round_f16),
                )
            })
            .collect();
        Box::new(PreparedSasOnly {
            kv,
            sas: self.sas.clone(),
        })
    }
}

impl PreparedAttention for PreparedSasOnly {
    fn query(&self, qs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        qs.iter()
            .zip(&self.kv)
            .map(|(q, (k, v))| {
                let d = q.len();
                let qm = Matrix::from_vec(1, d, q.clone());
                let mut s = matmul_f16(&qm, &k.transpose());
                s.scale_in_place(1.0 / (d as f32).sqrt());
                let p = self.sas.softmax(&s);
                matmul_f16(&p, v).row(0).to_vec()
            })
            .collect()
    }
}

// ---------------------------------------------------------------- Turbo --

/// TurboAttention: FlashQ-quantized KV cache + (optionally) SAS.
#[derive(Clone, Debug)]
pub struct TurboBackend {
    label: String,
    config: TurboConfig,
    /// `Some((n, method))` → head-wise mixed precision demoting `n` heads.
    mixed: Option<(usize, SelectionMethod)>,
    sas: Sas,
}

impl TurboBackend {
    /// Uniform INT4 KV cache with paper-default SAS.
    pub fn int4() -> Self {
        Self::uniform("TurboAttention", BitWidth::Int4, Sas::paper_default())
    }

    /// Uniform INT3 KV cache (the bit-matched comparison point for the
    /// 3-bit baselines of Table 2).
    pub fn int3() -> Self {
        Self::uniform("TurboAttention(3bit)", BitWidth::Int3, Sas::paper_default())
    }

    /// Uniform INT2 KV cache (the aggressive appendix setting).
    pub fn int2() -> Self {
        Self::uniform("TurboAttention(2bit)", BitWidth::Int2, Sas::paper_default())
    }

    /// Head-wise mixed 2/4-bit with the paper's priority metric.
    pub fn mixed(n_two_bit: usize) -> Self {
        Self::mixed_with(n_two_bit, SelectionMethod::Priority)
    }

    /// Head-wise mixed 2/4-bit with an explicit selection method
    /// (Figure 7b ablation).
    pub fn mixed_with(n_two_bit: usize, method: SelectionMethod) -> Self {
        let mut b = Self::uniform(
            "TurboAttention(mixed)",
            BitWidth::Int4,
            Sas::paper_default(),
        );
        b.mixed = Some((n_two_bit, method));
        b
    }

    /// FlashQ INT4 with *exact* exponentiation — isolates quantization
    /// error from SAS error (Table 4's "FlashQ-4bit" row).
    pub fn flashq_only() -> Self {
        Self::uniform("FlashQ-4bit", BitWidth::Int4, Sas::exact_reference())
    }

    /// Builds a uniform-precision backend with the given SAS evaluator.
    pub fn uniform(label: &str, bits: BitWidth, sas: Sas) -> Self {
        let config = TurboConfig {
            kv_bits: bits,
            // Scaled to the synthetic context (dozens of pairs, not 1k
            // tokens): tile and group sizes of 16.
            block_r: 16,
            block_c: 16,
            group_size: 16,
            buffer_capacity: 16,
            ..TurboConfig::default()
        };
        Self {
            label: label.to_string(),
            config,
            mixed: None,
            sas,
        }
    }

    /// Overrides the engine configuration (block-size ablations).
    pub fn with_config(mut self, config: TurboConfig) -> Self {
        self.config = config;
        self
    }
}

struct PreparedTurbo {
    caches: Vec<HeadKvCache>,
    sas: Sas,
}

impl Backend for TurboBackend {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn bits_label(&self) -> String {
        match self.mixed {
            Some((n, _)) => {
                if n == 0 {
                    "4".into()
                } else {
                    "2/4".into()
                }
            }
            None => self.config.kv_bits.bits().to_string(),
        }
    }

    fn prepare(&self, ks: &[Matrix], vs: &[Matrix]) -> Box<dyn PreparedAttention> {
        let bits: Vec<BitWidth> = match self.mixed {
            None => vec![self.config.kv_bits; ks.len()],
            Some((n, method)) => {
                let stats: Vec<HeadStats> = ks.iter().map(HeadStats::from_activations).collect();
                select_two_bit_heads(&stats, n, method)
            }
        };
        let caches = ks
            .iter()
            .zip(vs)
            .zip(&bits)
            .map(|((k, v), &b)| {
                let mut cache = HeadKvCache::new(
                    k.cols(),
                    KvCacheConfig {
                        bits: b,
                        group_size: self.config.group_size,
                        buffer_capacity: self.config.buffer_capacity,
                    },
                );
                for (start, k_blk) in k.row_blocks(self.config.block_c) {
                    let v_blk = v.row_block(start, k_blk.rows());
                    cache.append_prefill_block(&k_blk, &v_blk);
                }
                cache
            })
            .collect();
        Box::new(PreparedTurbo {
            caches,
            sas: self.sas.clone(),
        })
    }
}

impl PreparedAttention for PreparedTurbo {
    fn query(&self, qs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        qs.iter()
            .zip(&self.caches)
            .map(|(q, cache)| turbo_attend_cache(q, cache, &self.sas))
            .collect()
    }
}

// ------------------------------------------------------------------ FP8 --

/// FP8 (E4M3) KV-cache baseline — the Hopper-era simple competitor.
#[derive(Clone, Debug, Default)]
pub struct Fp8Backend;

impl Backend for Fp8Backend {
    fn name(&self) -> String {
        "FP8(E4M3)".into()
    }

    fn bits_label(&self) -> String {
        "8".into()
    }

    fn prepare(&self, ks: &[Matrix], vs: &[Matrix]) -> Box<dyn PreparedAttention> {
        let kv = ks
            .iter()
            .zip(vs)
            .map(|(k, v)| {
                let mut cache = Fp8Cache::new(k.cols());
                for t in 0..k.rows() {
                    cache.append(k.row(t), v.row(t));
                }
                cache.materialize()
            })
            .collect();
        Box::new(PreparedDequant { kv })
    }
}

// ----------------------------------------------------------- KIVI / GEAR --

/// The KIVI baseline at a given bit width.
#[derive(Clone, Debug)]
pub struct KiviBackend {
    config: KiviConfig,
}

impl KiviBackend {
    /// KIVI with context-scaled grouping: the paper runs `g = n_b = 64`
    /// on ~1.1k-token contexts (a ~6 % full-precision residual); at our
    /// ~50-70-pair episodes the same ratio gives `g = 8`, `n_b = 4`.
    pub fn new(bits: BitWidth) -> Self {
        Self {
            config: KiviConfig {
                bits,
                group: 8,
                residual: 4,
            },
        }
    }
}

/// The GEAR-L baseline at a given bit width (rank 4).
#[derive(Clone, Debug)]
pub struct GearBackend {
    config: GearConfig,
}

impl GearBackend {
    /// GEAR-L with context-scaled grouping (see [`KiviBackend::new`]) and
    /// the paper's rank 4.
    pub fn new(bits: BitWidth) -> Self {
        Self {
            config: GearConfig {
                bits,
                rank: 4,
                group: 8,
                residual: 4,
            },
        }
    }
}

struct PreparedDequant {
    kv: Vec<(Matrix, Matrix)>,
}

impl PreparedAttention for PreparedDequant {
    fn query(&self, qs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        qs.iter()
            .zip(&self.kv)
            .map(|(q, (k, v))| attend_f16(q, k, v))
            .collect()
    }
}

impl Backend for KiviBackend {
    fn name(&self) -> String {
        "KIVI".into()
    }

    fn bits_label(&self) -> String {
        self.config.bits.bits().to_string()
    }

    fn prepare(&self, ks: &[Matrix], vs: &[Matrix]) -> Box<dyn PreparedAttention> {
        let kv = ks
            .iter()
            .zip(vs)
            .map(|(k, v)| {
                let mut cache = KiviCache::new(k.cols(), self.config);
                for t in 0..k.rows() {
                    cache.append(k.row(t), v.row(t));
                }
                cache.materialize()
            })
            .collect();
        Box::new(PreparedDequant { kv })
    }
}

impl Backend for GearBackend {
    fn name(&self) -> String {
        "GEAR-L".into()
    }

    fn bits_label(&self) -> String {
        self.config.bits.bits().to_string()
    }

    fn prepare(&self, ks: &[Matrix], vs: &[Matrix]) -> Box<dyn PreparedAttention> {
        let kv = ks
            .iter()
            .zip(vs)
            .map(|(k, v)| {
                let mut cache = GearCache::new(k.cols(), self.config);
                for t in 0..k.rows() {
                    cache.append(k.row(t), v.row(t));
                }
                cache.materialize()
            })
            .collect();
        Box::new(PreparedDequant { kv })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::TensorRng;

    fn heads(seed: u64, h: usize, n: usize, d: usize) -> Vec<Matrix> {
        let mut rng = TensorRng::new(seed);
        (0..h).map(|_| rng.normal(n, d, 0.0, 1.0)).collect()
    }

    fn all_backends() -> Vec<Box<dyn Backend>> {
        vec![
            Box::new(Fp16Backend),
            Box::new(SasOnlyBackend::default()),
            Box::new(TurboBackend::int4()),
            Box::new(TurboBackend::mixed(4)),
            Box::new(TurboBackend::flashq_only()),
            Box::new(KiviBackend::new(BitWidth::Int4)),
            Box::new(GearBackend::new(BitWidth::Int4)),
        ]
    }

    #[test]
    fn every_backend_approximates_exact_attention() {
        let ks = heads(1, 4, 40, 16);
        let vs = heads(2, 4, 40, 16);
        let qs: Vec<Vec<f32>> = heads(3, 4, 1, 16)
            .into_iter()
            .map(|m| m.row(0).to_vec())
            .collect();
        // Exact reference per head.
        let exact: Vec<Vec<f32>> = (0..4)
            .map(|h| {
                let q = Matrix::from_vec(1, 16, qs[h].clone());
                turbo_attention::naive_attention(&q, &ks[h], &vs[h], Masking::Full)
                    .row(0)
                    .to_vec()
            })
            .collect();
        for b in all_backends() {
            // 2-bit heads are legitimately coarse; everything else must be
            // a close approximation.
            let tol = if b.name().contains("mixed") { 0.8 } else { 0.3 };
            let prepared = b.prepare(&ks, &vs);
            let outs = prepared.query(&qs);
            assert_eq!(outs.len(), 4, "{}", b.name());
            for h in 0..4 {
                for (a, e) in outs[h].iter().zip(&exact[h]) {
                    assert!((a - e).abs() < tol, "{} head {h}: {a} vs {e}", b.name());
                }
            }
        }
    }

    #[test]
    fn bits_labels_match_table_2() {
        assert_eq!(Fp16Backend.bits_label(), "16");
        assert_eq!(TurboBackend::int4().bits_label(), "4");
        assert_eq!(TurboBackend::mixed(4).bits_label(), "2/4");
        assert_eq!(KiviBackend::new(BitWidth::Int3).bits_label(), "3");
        assert_eq!(GearBackend::new(BitWidth::Int2).bits_label(), "2");
    }

    #[test]
    fn fp16_is_the_most_accurate_backend() {
        let ks = heads(4, 2, 48, 32);
        let vs = heads(5, 2, 48, 32);
        let qs: Vec<Vec<f32>> = heads(6, 2, 1, 32)
            .into_iter()
            .map(|m| m.row(0).to_vec())
            .collect();
        let exact: Vec<Vec<f32>> = (0..2)
            .map(|h| {
                let q = Matrix::from_vec(1, 32, qs[h].clone());
                turbo_attention::naive_attention(&q, &ks[h], &vs[h], Masking::Full)
                    .row(0)
                    .to_vec()
            })
            .collect();
        let err = |b: &dyn Backend| {
            let outs = b.prepare(&ks, &vs).query(&qs);
            outs.iter()
                .zip(&exact)
                .flat_map(|(o, e)| o.iter().zip(e).map(|(a, b)| ((a - b) as f64).powi(2)))
                .sum::<f64>()
        };
        let e_fp16 = err(&Fp16Backend);
        let e_turbo2 = err(&TurboBackend::int2());
        assert!(e_fp16 < e_turbo2);
    }

    #[test]
    fn mixed_precision_prepares_requested_bit_split() {
        // Build heads where the first two have far larger ranges.
        let mut rng = TensorRng::new(7);
        let mut ks = Vec::new();
        for h in 0..4 {
            let m = if h < 2 {
                rng.normal_with_channel_outliers(32, 16, 1.0, &[1, 9], 20.0)
            } else {
                rng.normal(32, 16, 0.0, 1.0)
            };
            ks.push(m);
        }
        let vs = heads(8, 4, 32, 16);
        let backend = TurboBackend::mixed(2);
        // Indirectly verify via accuracy asymmetry: prepared caches exist
        // and queries succeed (bit assignment is tested in turbo-attention).
        let outs = backend.prepare(&ks, &vs).query(
            &heads(9, 4, 1, 16)
                .into_iter()
                .map(|m| m.row(0).to_vec())
                .collect::<Vec<_>>(),
        );
        assert_eq!(outs.len(), 4);
    }
}

// ----------------------------------------------------------- QuaRot+Turbo --

/// TurboAttention composed with a QuaRot-style Hadamard rotation of
/// queries and keys — Table 1's "orthogonal techniques" claim, realized:
/// exact scores are invariant under the rotation, while key-channel
/// outliers are smeared before quantization.
#[derive(Clone, Debug)]
pub struct QuarotTurboBackend {
    inner: TurboBackend,
}

impl QuarotTurboBackend {
    /// QuaRot rotation + uniform INT4 TurboAttention.
    pub fn int4() -> Self {
        Self {
            inner: TurboBackend::int4(),
        }
    }

    /// QuaRot rotation + uniform INT2 TurboAttention (where smearing
    /// matters most).
    pub fn int2() -> Self {
        Self {
            inner: TurboBackend::int2(),
        }
    }
}

struct PreparedQuarot {
    inner: Box<dyn PreparedAttention>,
}

impl Backend for QuarotTurboBackend {
    fn name(&self) -> String {
        format!("QuaRot+{}", self.inner.name())
    }

    fn bits_label(&self) -> String {
        self.inner.bits_label()
    }

    fn prepare(&self, ks: &[Matrix], vs: &[Matrix]) -> Box<dyn PreparedAttention> {
        let rotated: Vec<Matrix> = ks.iter().map(turbo_quant::hadamard_rotate).collect();
        Box::new(PreparedQuarot {
            inner: self.inner.prepare(&rotated, vs),
        })
    }
}

impl PreparedAttention for PreparedQuarot {
    fn query(&self, qs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let rotated: Vec<Vec<f32>> = qs
            .iter()
            .map(|q| {
                let mut r = q.clone();
                turbo_quant::fht(&mut r);
                r
            })
            .collect();
        self.inner.query(&rotated)
    }
}
