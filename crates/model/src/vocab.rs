//! Symbol vocabularies of random unit embeddings.

use turbo_tensor::{Matrix, TensorRng};

/// A vocabulary of `size` symbols embedded as random unit vectors in
/// `R^d`.
///
/// Random high-dimensional unit vectors are near-orthogonal, so
/// nearest-neighbour decoding is reliable until an approximation error
/// comparable to the inter-symbol margin is introduced — the same
/// failure threshold an LLM's output logits have.
#[derive(Clone, Debug)]
pub struct Vocabulary {
    emb: Matrix,
}

impl Vocabulary {
    /// Samples a vocabulary of `size` unit embeddings in `R^d`.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `d == 0`.
    pub fn random(size: usize, d: usize, rng: &mut TensorRng) -> Self {
        assert!(size > 0 && d > 0, "vocabulary dimensions must be positive");
        let mut emb = rng.normal(size, d, 0.0, 1.0);
        for r in 0..size {
            let norm: f32 = emb.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(norm > 0.0, "degenerate embedding row");
            for v in emb.row_mut(r) {
                *v /= norm;
            }
        }
        Self { emb }
    }

    /// Samples a *clustered* vocabulary: symbols come in consecutive
    /// clusters of `cluster_size`, and two symbols in the same cluster
    /// have expected cosine similarity `rho`.
    ///
    /// Clusters model confusable tokens (near-synonyms, close numbers):
    /// the decision margin between siblings is `1 − rho`, which is what
    /// makes retrieval sensitive to quantization error the way LLM logit
    /// margins are.
    ///
    /// # Panics
    ///
    /// Panics if `size % cluster_size != 0`, `cluster_size == 0`, or
    /// `rho` is outside `[0, 1)`.
    pub fn random_clustered(
        size: usize,
        d: usize,
        cluster_size: usize,
        rho: f32,
        rng: &mut TensorRng,
    ) -> Self {
        assert!(cluster_size > 0, "cluster size must be positive");
        assert_eq!(size % cluster_size, 0, "size must be a cluster multiple");
        assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");
        let a = rho.sqrt();
        let b = (1.0 - rho).sqrt();
        let mut emb = Matrix::zeros(size, d);
        let n_clusters = size / cluster_size;
        for cl in 0..n_clusters {
            let center = unit_row(d, rng);
            for m in 0..cluster_size {
                let fresh = unit_row(d, rng);
                let row: Vec<f32> = center
                    .iter()
                    .zip(&fresh)
                    .map(|(c, f)| a * c + b * f)
                    .collect();
                let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
                let s = cl * cluster_size + m;
                for (c, v) in row.iter().enumerate() {
                    emb.set(s, c, v / norm);
                }
            }
        }
        Self { emb }
    }

    /// Wraps an existing embedding table (rows are symbols).
    pub fn from_embeddings(emb: Matrix) -> Self {
        assert!(!emb.is_empty(), "empty embedding table");
        Self { emb }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.emb.rows()
    }

    /// Whether the vocabulary is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.emb.rows() == 0
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.emb.cols()
    }

    /// Embedding of symbol `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn embedding(&self, s: usize) -> &[f32] {
        self.emb.row(s)
    }

    /// The full embedding table.
    pub fn embeddings(&self) -> &Matrix {
        &self.emb
    }

    /// Decodes a vector to the symbol with the highest dot product — the
    /// argmax-over-logits step of LLM decoding.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn nearest(&self, x: &[f32]) -> usize {
        assert_eq!(x.len(), self.dim(), "vector width mismatch");
        let mut best = 0usize;
        let mut best_dot = f32::NEG_INFINITY;
        for s in 0..self.len() {
            let dot: f32 = self.emb.row(s).iter().zip(x).map(|(a, b)| a * b).sum();
            if dot > best_dot {
                best_dot = dot;
                best = s;
            }
        }
        best
    }

    /// The two best dot products for `x` — the decoding margin, useful for
    /// difficulty calibration.
    pub fn margin(&self, x: &[f32]) -> (f32, f32) {
        let mut best = f32::NEG_INFINITY;
        let mut second = f32::NEG_INFINITY;
        for s in 0..self.len() {
            let dot: f32 = self.emb.row(s).iter().zip(x).map(|(a, b)| a * b).sum();
            if dot > best {
                second = best;
                best = dot;
            } else if dot > second {
                second = dot;
            }
        }
        (best, second)
    }
}

/// One random unit vector.
fn unit_row(d: usize, rng: &mut TensorRng) -> Vec<f32> {
    let mut v: Vec<f32> = (0..d).map(|_| rng.standard_normal()).collect();
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    for x in &mut v {
        *x /= norm;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_siblings_have_target_cosine() {
        let mut rng = TensorRng::new(11);
        let v = Vocabulary::random_clustered(128, 64, 4, 0.8, &mut rng);
        let mut within = 0.0f64;
        let mut count = 0usize;
        for cl in 0..32 {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    let ea = v.embedding(cl * 4 + a);
                    let eb = v.embedding(cl * 4 + b);
                    within += ea.iter().zip(eb).map(|(x, y)| x * y).sum::<f32>() as f64;
                    count += 1;
                }
            }
        }
        let mean = within / count as f64;
        assert!((mean - 0.8).abs() < 0.05, "within-cluster cosine {mean}");
    }

    #[test]
    fn clustered_cross_cluster_cosine_is_small() {
        let mut rng = TensorRng::new(12);
        let v = Vocabulary::random_clustered(64, 64, 4, 0.8, &mut rng);
        let e0 = v.embedding(0);
        let e_far = v.embedding(17); // different cluster
        let cos: f32 = e0.iter().zip(e_far).map(|(a, b)| a * b).sum();
        assert!(cos.abs() < 0.5, "cross-cluster cosine {cos}");
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let mut rng = TensorRng::new(1);
        let v = Vocabulary::random(64, 32, &mut rng);
        for s in 0..64 {
            let n: f32 = v.embedding(s).iter().map(|x| x * x).sum();
            assert!((n - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn nearest_recovers_exact_embeddings() {
        let mut rng = TensorRng::new(2);
        let v = Vocabulary::random(128, 64, &mut rng);
        for s in (0..128).step_by(7) {
            assert_eq!(v.nearest(v.embedding(s)), s);
        }
    }

    #[test]
    fn nearest_tolerates_small_noise() {
        let mut rng = TensorRng::new(3);
        let v = Vocabulary::random(256, 64, &mut rng);
        for s in (0..256).step_by(17) {
            let noisy: Vec<f32> = v
                .embedding(s)
                .iter()
                .map(|&x| x + 0.03 * rng.standard_normal())
                .collect();
            assert_eq!(v.nearest(&noisy), s);
        }
    }

    #[test]
    fn margin_separates_best_from_second() {
        let mut rng = TensorRng::new(4);
        let v = Vocabulary::random(64, 64, &mut rng);
        let (best, second) = v.margin(v.embedding(5));
        assert!((best - 1.0).abs() < 1e-5);
        assert!(
            second < 0.7,
            "second-best cosine {second} suspiciously high"
        );
    }

    #[test]
    fn determinism() {
        let a = Vocabulary::random(16, 8, &mut TensorRng::new(9));
        let b = Vocabulary::random(16, 8, &mut TensorRng::new(9));
        assert_eq!(a.embeddings(), b.embeddings());
    }
}
