//! Weight-quantization proxies for the Table 5 integration experiment.
//!
//! The paper shows TurboAttention composes with weight/activation
//! quantization (LLM.int8, Qserve). In this substrate the "weights" are
//! the vocabulary embedding tables; quantizing them per output channel
//! reproduces the small constant accuracy offset weight quantization
//! introduces, on top of which TurboAttention's own degradation is
//! measured.

use turbo_quant::asymmetric::fake_quant_channelwise;
use turbo_quant::BitWidth;
use turbo_tensor::Matrix;

/// Weight quantization schemes for Table 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum WeightQuant {
    /// Full-precision weights.
    #[default]
    None,
    /// LLM.int8-style 8-bit per-channel weight quantization (W8A8 proxy).
    Int8PerChannel,
    /// Qserve-style 4-bit per-channel weight quantization (W4A8 proxy).
    Int4PerChannel,
}

impl WeightQuant {
    /// Fake-quantizes a weight matrix per output channel.
    pub fn apply(self, w: &Matrix) -> Matrix {
        match self {
            WeightQuant::None => w.clone(),
            WeightQuant::Int8PerChannel => fake_quant_channelwise(w, BitWidth::Int8, w.rows()),
            WeightQuant::Int4PerChannel => fake_quant_channelwise(w, BitWidth::Int4, w.rows()),
        }
    }

    /// Label for table rows.
    pub fn label(self) -> &'static str {
        match self {
            WeightQuant::None => "FP16 weights",
            WeightQuant::Int8PerChannel => "LLM.int8()",
            WeightQuant::Int4PerChannel => "Qserve (W4)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::{relative_error, TensorRng};

    #[test]
    fn none_is_identity() {
        let m = TensorRng::new(1).normal(8, 8, 0.0, 1.0);
        assert_eq!(WeightQuant::None.apply(&m), m);
    }

    #[test]
    fn int8_is_nearly_lossless_int4_is_coarser() {
        let m = TensorRng::new(2).normal(64, 32, 0.0, 1.0);
        let e8 = relative_error(&WeightQuant::Int8PerChannel.apply(&m), &m);
        let e4 = relative_error(&WeightQuant::Int4PerChannel.apply(&m), &m);
        assert!(e8 < 0.01, "int8 err {e8}");
        assert!(e4 > e8 && e4 < 0.15, "int4 err {e4}");
    }

    #[test]
    fn labels() {
        assert_eq!(WeightQuant::Int8PerChannel.label(), "LLM.int8()");
    }
}
