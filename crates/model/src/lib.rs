//! # turbo-model
//!
//! Synthetic transformer substrate for the accuracy evaluation
//! (Tables 2–5, Figures 4 and 7b–10 of the paper).
//!
//! ## Why synthetic?
//!
//! The paper evaluates LLaMA3-8B, Qwen2-7B and Phi-3 on GSM8k / AQuA / BBH
//! chain-of-thought generation. Neither the pretrained weights nor a GPU
//! are available in this environment, so this crate reproduces the
//! *mechanism* by which attention approximation degrades accuracy:
//! a retrieval decision flips when quantization perturbs attention weights
//! or retrieved values.
//!
//! The harness builds **multi-hop associative recall** tasks with
//! *constructed* attention heads:
//!
//! * A per-head vocabulary of random unit embeddings encodes symbols.
//! * Key/value pairs are laid out as `K`/`V` rows; the query is the cue
//!   symbol's embedding. Exact attention retrieves the paired value with
//!   near-certainty; decoding is a nearest-neighbour lookup.
//! * A hop's retrieved symbol becomes the next hop's cue — mirroring CoT
//!   decoding, where one wrong step derails the chain.
//! * Channel-outlier structure (Figure 4) is injected with a diagonal
//!   transform `D`: keys become `D·k`, queries `D⁻¹·q`. Exact scores are
//!   unchanged, but quantizers now face the exact outlier channels real
//!   models exhibit. Value outliers are injected the same way and undone
//!   after attention (the `W_o` role).
//!
//! Accuracy = fraction of episodes whose final symbol is retrieved
//! correctly, evaluated per [`backend`] (FP16, TurboAttention, KIVI,
//! GEAR-L, …) per [`profile`] (LLaMA3-like, Qwen2-like, Phi3-like) per
//! [`tasks`] suite (GSM8k/AQuA/BBH proxies).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod eval;
pub mod outliers;
pub mod profile;
pub mod tasks;
pub mod vocab;
pub mod weight_quant;

pub use backend::{Backend, PreparedAttention};
pub use eval::{evaluate, evaluate_on, EvalConfig, EvalResult};
pub use profile::ModelProfile;
pub use tasks::{RecallEpisode, TaskSuite};
pub use vocab::Vocabulary;
pub use weight_quant::WeightQuant;
