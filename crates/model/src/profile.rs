//! Model profiles: constructed attention geometries mimicking the QKV
//! distribution families of LLaMA3, Qwen2 and Phi-3 (Figure 4, Appendix D).
//!
//! ## Outlier construction
//!
//! Real transformer heads concentrate signal in a few high-magnitude
//! channels (Figure 4). The profiles reproduce this with **anisotropic
//! embeddings**: an outlier-bearing head's key (or value) vocabulary is
//! `normalize(D · e)` for a diagonal `D` that amplifies a few channels.
//! Those channels then carry most of the head's information, so
//! quantization error in them — which grows with the channel's range —
//! costs real accuracy. This is what makes the `gap × std` priority
//! metric (Equation 11) meaningful: it flags exactly the heads whose
//! channels are range-heavy, i.e. the fragile ones.
//!
//! Outlier heads are also the *reliable* retrieval heads (their values
//! carry less noise), mirroring the massive-activations literature;
//! demoting one to 2-bit therefore costs more than demoting a calm head.

use crate::outliers::ChannelOutliers;
use crate::tasks::RecallEpisode;
use crate::vocab::Vocabulary;
use crate::weight_quant::WeightQuant;
use turbo_tensor::{Matrix, TensorRng};

/// A synthetic model: per-head key/value vocabularies with anisotropic
/// outlier structure, plus score/noise calibration.
///
/// * LLaMA3-like — key anisotropy on half the heads, mild value outliers.
/// * Qwen2-like — stronger key anisotropy on most heads (hardest tasks).
/// * Phi3-like — pronounced **value** anisotropy (Appendix D) plus
///   moderate key outliers.
#[derive(Clone, Debug)]
pub struct ModelProfile {
    name: &'static str,
    n_heads: usize,
    head_dim: usize,
    vocab_size: usize,
    cluster_size: usize,
    score_temp: f32,
    value_noise: f32,
    /// Fraction of filler pairs whose value row is an amplitude outlier
    /// (attention-sink-like tokens; harmless to exact retrieval, hostile
    /// to group-quantization scales).
    v_token_outlier_frac: f32,
    /// Amplitude multiplier of those outlier rows.
    v_token_outlier_scale: f32,
    seed: u64,
    k_tf: Vec<ChannelOutliers>,
    v_tf: Vec<ChannelOutliers>,
    k_vocabs: Vec<Vocabulary>,
    v_vocabs: Vec<Vocabulary>,
}

/// Shared geometry for the three paper-matched profiles.
const HEADS: usize = 8;
const HEAD_DIM: usize = 64;
const VOCAB: usize = 512;
/// Attention score of the matched key before softmax. High enough that
/// exact attention retrieves with near-certainty; low enough that
/// quantization error on scores can leak probability to distractors.
const SCORE_TEMP: f32 = 8.0;
/// Symbols per confusability cluster.
const CLUSTER: usize = 4;
/// Within-cluster cosine similarity: the decision margin is `1 − RHO`.
const RHO: f32 = 0.87;
/// Fraction of filler value rows that are amplitude outliers.
const V_TOKEN_OUTLIER_FRAC: f32 = 0.015;
/// Amplitude of those rows.
const V_TOKEN_OUTLIER_SCALE: f32 = 5.0;

impl ModelProfile {
    /// Fully custom profile.
    ///
    /// `k_outliers` / `v_outliers` give `(channels, scale)` per head
    /// (`None` = isotropic head).
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or outlier specs disagree with
    /// `n_heads`.
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: &'static str,
        n_heads: usize,
        head_dim: usize,
        vocab_size: usize,
        cluster_size: usize,
        rho: f32,
        score_temp: f32,
        value_noise: f32,
        seed: u64,
        k_outliers: &[Option<(usize, f32)>],
        v_outliers: &[Option<(usize, f32)>],
    ) -> Self {
        assert!(n_heads > 0 && head_dim > 0 && vocab_size > 1, "bad dims");
        assert_eq!(k_outliers.len(), n_heads, "one K outlier spec per head");
        assert_eq!(v_outliers.len(), n_heads, "one V outlier spec per head");
        let mut rng = TensorRng::new(seed);
        let base: Vec<Vocabulary> = (0..n_heads)
            .map(|_| {
                Vocabulary::random_clustered(vocab_size, head_dim, cluster_size, rho, &mut rng)
            })
            .collect();
        let mut build = |spec: &[Option<(usize, f32)>]| -> Vec<ChannelOutliers> {
            spec.iter()
                .map(|s| match s {
                    None => ChannelOutliers::identity(head_dim),
                    Some((count, scale)) => {
                        ChannelOutliers::random(head_dim, *count, *scale, &mut rng)
                    }
                })
                .collect()
        };
        let k_tf = build(k_outliers);
        let v_tf = build(v_outliers);
        let k_vocabs = base
            .iter()
            .zip(&k_tf)
            .map(|(v, tf)| Vocabulary::from_embeddings(tf.apply_and_renormalize(v.embeddings())))
            .collect();
        // Value vocabularies keep their raw transformed magnitudes: value
        // channel outliers are amplitude outliers in the cache (Figure 9),
        // and decode compensates by scoring with cosine similarity.
        let v_vocabs = base
            .iter()
            .zip(&v_tf)
            .map(|(v, tf)| Vocabulary::from_embeddings(tf.apply(v.embeddings())))
            .collect();
        Self {
            name,
            n_heads,
            head_dim,
            vocab_size,
            cluster_size,
            score_temp,
            value_noise,
            v_token_outlier_frac: V_TOKEN_OUTLIER_FRAC,
            v_token_outlier_scale: V_TOKEN_OUTLIER_SCALE,
            seed,
            k_tf,
            v_tf,
            k_vocabs,
            v_vocabs,
        }
    }

    /// Overrides the token-outlier injection (0.0 disables it).
    pub fn with_token_outliers(mut self, frac: f32, scale: f32) -> Self {
        assert!((0.0..=1.0).contains(&frac), "fraction must be in [0,1]");
        assert!(scale >= 1.0, "scale must be ≥ 1");
        self.v_token_outlier_frac = frac;
        self.v_token_outlier_scale = scale;
        self
    }

    /// LLaMA3-8B-like profile: key anisotropy on half the heads and mild
    /// value outliers (Figure 8).
    pub fn llama3_like() -> Self {
        let k: Vec<_> = (0..HEADS)
            .map(|h| if h % 2 == 0 { Some((4, 5.0)) } else { None })
            .collect();
        // Outlier heads carry both key and value anisotropy, as real
        // massive-activation heads do.
        let v: Vec<_> = (0..HEADS)
            .map(|h| if h % 2 == 0 { Some((5, 12.0)) } else { None })
            .collect();
        Self::custom(
            "LLaMA3-8B-like",
            HEADS,
            HEAD_DIM,
            VOCAB,
            CLUSTER,
            RHO,
            SCORE_TEMP,
            0.22,
            0xA11A,
            &k,
            &v,
        )
    }

    /// Qwen2-7B-like profile: strong key anisotropy on most heads and
    /// mild value outliers.
    pub fn qwen2_like() -> Self {
        let k: Vec<_> = (0..HEADS)
            .map(|h| if h < 6 { Some((3, 6.0)) } else { None })
            .collect();
        let v: Vec<_> = (0..HEADS)
            .map(|h| if h < 6 { Some((5, 12.0)) } else { None })
            .collect();
        Self::custom(
            "Qwen2-7B-like",
            HEADS,
            HEAD_DIM,
            VOCAB,
            CLUSTER,
            RHO,
            SCORE_TEMP,
            0.26,
            0x90E2,
            &k,
            &v,
        )
    }

    /// Phi3-mini-like profile: pronounced value-cache channel outliers
    /// (Appendix D) plus moderate key outliers.
    pub fn phi3_like() -> Self {
        let k: Vec<_> = (0..HEADS)
            .map(|h| if h % 2 == 0 { Some((3, 4.0)) } else { None })
            .collect();
        let v: Vec<_> = (0..HEADS)
            .map(|h| if h % 2 == 0 { Some((6, 16.0)) } else { None })
            .collect();
        Self::custom(
            "Phi3-mini-like",
            HEADS,
            HEAD_DIM,
            VOCAB,
            CLUSTER,
            RHO,
            SCORE_TEMP,
            0.18,
            0x9413,
            &k,
            &v,
        )
    }

    /// The three paper-matched profiles in Table 2 order.
    pub fn paper_profiles() -> Vec<ModelProfile> {
        vec![Self::llama3_like(), Self::qwen2_like(), Self::phi3_like()]
    }

    /// Profile name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of attention heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Per-head channel dimension.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Symbols per confusability cluster.
    pub fn cluster_size(&self) -> usize {
        self.cluster_size
    }

    /// The per-head key transforms (exposed for Figure 4 generation).
    pub fn key_transform(&self, h: usize) -> &ChannelOutliers {
        &self.k_tf[h]
    }

    /// The per-head value transforms.
    pub fn value_transform(&self, h: usize) -> &ChannelOutliers {
        &self.v_tf[h]
    }

    /// Score magnitude of the matched key.
    pub fn score_temp(&self) -> f32 {
        self.score_temp
    }

    /// Returns a copy whose vocabulary embeddings (the "weights") are
    /// fake-quantized per the given scheme — the Table 5 integration
    /// experiment with LLM.int8/Qserve-style weight quantization.
    pub fn with_weight_quant(&self, wq: WeightQuant) -> Self {
        let mut out = self.clone();
        let quantize = |vs: &[Vocabulary]| -> Vec<Vocabulary> {
            vs.iter()
                .map(|v| Vocabulary::from_embeddings(wq.apply(v.embeddings())))
                .collect()
        };
        out.k_vocabs = quantize(&out.k_vocabs);
        out.v_vocabs = quantize(&out.v_vocabs);
        out
    }

    /// Per-head value-noise level. Outlier-bearing heads are the precise
    /// retrieval heads; calm heads carry noisier values, so demoting a
    /// precise head to 2-bit costs accuracy while demoting a calm head is
    /// nearly free — the asymmetry the priority metric exploits.
    fn head_value_noise(&self, h: usize) -> f32 {
        if self.k_tf[h].is_identity() {
            self.value_noise * 1.4
        } else {
            self.value_noise
        }
    }

    /// Query/key embedding scale: matched score = `score_temp` after the
    /// `1/√d` attention normalization (embeddings are unit-norm).
    fn qk_scale(&self) -> f32 {
        (self.score_temp * (self.head_dim as f32).sqrt()).sqrt()
    }

    /// Builds the per-head `(K, V)` tensors of an episode. `noise_rng`
    /// drives the additive value noise and token-outlier draws.
    pub fn episode_tensors(
        &self,
        ep: &RecallEpisode,
        noise_rng: &mut TensorRng,
    ) -> (Vec<Matrix>, Vec<Matrix>) {
        let a = self.qk_scale();
        let n = ep.keys.len();
        // Pick amplitude-outlier rows once (consistent across heads).
        // Eligible rows are *filler* pairs only — keys from clusters the
        // chain never touches, whose attention weight is ~e^{-temp} — so
        // exact retrieval is unaffected while group-quantization scales
        // are inflated.
        let chain: Vec<usize> = ep.chain_pair_indices();
        let chain_clusters: Vec<usize> = chain
            .iter()
            .map(|&i| ep.keys[i] / self.cluster_size)
            .collect();
        let token_scale: Vec<f32> = (0..n)
            .map(|i| {
                let filler = !chain_clusters.contains(&(ep.keys[i] / self.cluster_size));
                if filler && noise_rng.uniform_value(0.0, 1.0) < self.v_token_outlier_frac {
                    self.v_token_outlier_scale
                } else {
                    1.0
                }
            })
            .collect();
        let mut ks = Vec::with_capacity(self.n_heads);
        let mut vs = Vec::with_capacity(self.n_heads);
        for h in 0..self.n_heads {
            let noise = self.head_value_noise(h);
            let mut k = Matrix::zeros(n, self.head_dim);
            let mut v = Matrix::zeros(n, self.head_dim);
            for (i, (&key, &val)) in ep.keys.iter().zip(&ep.values).enumerate() {
                for (c, &e) in self.k_vocabs[h].embedding(key).iter().enumerate() {
                    k.set(i, c, e * a);
                }
                for (c, &e) in self.v_vocabs[h].embedding(val).iter().enumerate() {
                    v.set(
                        i,
                        c,
                        (e + noise * noise_rng.standard_normal()) * token_scale[i],
                    );
                }
            }
            ks.push(k);
            vs.push(v);
        }
        (ks, vs)
    }

    /// Per-head query rows for cue `symbol` (queries and keys share the
    /// anisotropic per-head embedding space).
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of vocabulary range.
    pub fn query_rows(&self, symbol: usize) -> Vec<Vec<f32>> {
        assert!(symbol < self.vocab_size, "symbol out of range");
        let a = self.qk_scale();
        (0..self.n_heads)
            .map(|h| {
                self.k_vocabs[h]
                    .embedding(symbol)
                    .iter()
                    .map(|&x| x * a)
                    .collect()
            })
            .collect()
    }

    /// Decodes per-head attention outputs to a symbol: per-head logits
    /// against that head's value vocabulary, summed, then argmax (the
    /// `W_o` + LM-head role).
    ///
    /// # Panics
    ///
    /// Panics if the output count or widths disagree with the profile.
    pub fn decode(&self, outs: &[Vec<f32>]) -> usize {
        assert_eq!(outs.len(), self.n_heads, "one output row per head");
        let mut logits = vec![0.0f32; self.vocab_size];
        for (out, vocab) in outs.iter().zip(&self.v_vocabs) {
            assert_eq!(out.len(), self.head_dim, "output width mismatch");
            let emb = vocab.embeddings();
            for (s, logit) in logits.iter_mut().enumerate() {
                let row = emb.row(s);
                let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
                let dot: f32 = row.iter().zip(out).map(|(a, b)| a * b).sum();
                // Cosine scoring: value embeddings are not unit norm
                // (channel outliers), so normalize the embedding side.
                *logit += dot / norm.max(1e-12);
            }
        }
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("non-finite logit"))
            .map(|(s, _)| s)
            .expect("empty vocabulary")
    }

    /// Calibration key activations for head `h` — `tokens` rows of
    /// random-symbol keys, used for head-priority statistics and the
    /// Figure 4 channel-distribution plots.
    pub fn calibration_keys(&self, h: usize, tokens: usize) -> Matrix {
        let mut rng = TensorRng::new(self.seed ^ (h as u64) << 32 ^ 0xCA11);
        let a = self.qk_scale();
        let mut k = Matrix::zeros(tokens, self.head_dim);
        for t in 0..tokens {
            let s = rng.index(self.vocab_size);
            for (c, &e) in self.k_vocabs[h].embedding(s).iter().enumerate() {
                k.set(t, c, e * a);
            }
        }
        k
    }

    /// Calibration value activations for head `h` (Figures 8–9).
    pub fn calibration_values(&self, h: usize, tokens: usize) -> Matrix {
        let mut rng = TensorRng::new(self.seed ^ (h as u64) << 32 ^ 0x7A1E);
        let noise = self.head_value_noise(h);
        let mut v = Matrix::zeros(tokens, self.head_dim);
        for t in 0..tokens {
            let s = rng.index(self.vocab_size);
            for (c, &e) in self.v_vocabs[h].embedding(s).iter().enumerate() {
                v.set(t, c, e + noise * rng.standard_normal());
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::TaskSuite;

    #[test]
    fn paper_profiles_have_expected_shapes() {
        for p in ModelProfile::paper_profiles() {
            assert_eq!(p.n_heads(), 8);
            assert_eq!(p.head_dim(), 64);
            assert_eq!(p.vocab_size(), 512);
        }
    }

    #[test]
    fn exact_attention_solves_single_hop() {
        // Sanity: with exact f32 attention the construction retrieves the
        // right value essentially always.
        let p = ModelProfile::llama3_like();
        let suite = TaskSuite::gsm8k_proxy();
        let mut rng = TensorRng::new(7);
        let mut correct = 0;
        let trials = 20;
        for _ in 0..trials {
            let ep = RecallEpisode::generate_clustered(
                &mut rng,
                p.vocab_size(),
                p.cluster_size(),
                suite.n_pairs,
                1,
                suite.confusers,
            );
            let (ks, vs) = p.episode_tensors(&ep, &mut rng);
            let qs = p.query_rows(ep.cue);
            let outs: Vec<Vec<f32>> = (0..p.n_heads())
                .map(|h| {
                    let q = Matrix::from_vec(1, p.head_dim(), qs[h].clone());
                    let o = turbo_attention::naive_attention(
                        &q,
                        &ks[h],
                        &vs[h],
                        turbo_attention::Masking::Full,
                    );
                    o.row(0).to_vec()
                })
                .collect();
            if p.decode(&outs) == ep.answer {
                correct += 1;
            }
        }
        assert!(correct >= trials - 2, "exact accuracy {correct}/{trials}");
    }

    #[test]
    fn query_key_scores_hit_the_temperature() {
        let p = ModelProfile::qwen2_like();
        let ep =
            RecallEpisode::generate_clustered(&mut TensorRng::new(1), p.vocab_size(), 4, 16, 1, 1);
        let mut noise = TensorRng::new(2);
        let (ks, _) = p.episode_tensors(&ep, &mut noise);
        let qs = p.query_rows(ep.keys[3]);
        for h in 0..p.n_heads() {
            let dot: f32 = qs[h].iter().zip(ks[h].row(3)).map(|(a, b)| a * b).sum();
            let score = dot / (p.head_dim() as f32).sqrt();
            assert!(
                (score - p.score_temp()).abs() < 0.05,
                "head {h} matched score {score}"
            );
        }
    }

    #[test]
    fn calibration_keys_reflect_outlier_structure() {
        let p = ModelProfile::llama3_like();
        // Head 0 is anisotropic, head 1 is not.
        let s0 = turbo_attention::HeadStats::from_activations(&p.calibration_keys(0, 256));
        let s1 = turbo_attention::HeadStats::from_activations(&p.calibration_keys(1, 256));
        assert!(
            s0.priority() > 2.0 * s1.priority(),
            "priority {} vs {}",
            s0.priority(),
            s1.priority()
        );
    }

    #[test]
    fn anisotropic_heads_are_more_quantization_fragile() {
        // Channelwise INT2 on the key tensor must perturb an anisotropic
        // head's scores more than an isotropic head's (the matched-score
        // magnitude is identical by construction).
        use turbo_quant::asymmetric::fake_quant_channelwise;
        use turbo_quant::BitWidth;
        let p = ModelProfile::llama3_like();
        let score_err = |h: usize| {
            let k = p.calibration_keys(h, 128);
            let kq = fake_quant_channelwise(&k, BitWidth::Int2, 64);
            let q = p.query_rows(42)[h].clone();
            let mut worst = 0.0f32;
            for t in 0..128 {
                let exact: f32 = q.iter().zip(k.row(t)).map(|(a, b)| a * b).sum();
                let approx: f32 = q.iter().zip(kq.row(t)).map(|(a, b)| a * b).sum();
                worst = worst.max((exact - approx).abs());
            }
            worst
        };
        let aniso = score_err(0);
        let iso = score_err(1);
        assert!(
            aniso > 1.3 * iso,
            "anisotropic err {aniso} vs isotropic {iso}"
        );
    }

    #[test]
    fn weight_quant_changes_embeddings_slightly() {
        let p = ModelProfile::llama3_like();
        let pq = p.with_weight_quant(WeightQuant::Int8PerChannel);
        let a = p.k_vocabs[0].embeddings();
        let b = pq.k_vocabs[0].embeddings();
        assert_ne!(a, b);
        assert!(turbo_tensor::relative_error(b, a) < 0.02);
    }

    #[test]
    fn decode_recovers_clean_embeddings() {
        let p = ModelProfile::phi3_like();
        let sym = 42;
        let outs: Vec<Vec<f32>> = (0..p.n_heads())
            .map(|h| p.v_vocabs[h].embedding(sym).to_vec())
            .collect();
        assert_eq!(p.decode(&outs), sym);
    }
}
