//! Multi-hop associative-recall episodes — the CoT-reasoning proxies.
//!
//! Each episode lays out `n_pairs` key→value associations; the model is
//! cued with a start symbol and must follow the chain
//! `cue → v₁ → v₂ → …` for `hops` retrievals, exactly as a
//! chain-of-thought answer requires every intermediate step to be decoded
//! correctly.
//!
//! Difficulty comes from **confusable distractors**: vocabularies are
//! clustered ([`crate::vocab::Vocabulary::random_clustered`]) and every
//! chain key is accompanied by sibling keys from its own cluster, paired
//! with wrong values. The score margin between the matched key and its
//! siblings is `temp · (1 − ρ)`, and the decode margin between the correct
//! value and *its* siblings is `1 − ρ` — thin enough that quantization
//! error flips retrievals at the rates Table 2 reports.

use turbo_tensor::TensorRng;

/// A task suite: the synthetic analogue of one benchmark dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskSuite {
    /// Suite name as printed in tables.
    pub name: &'static str,
    /// Key/value pairs per episode (context size).
    pub n_pairs: usize,
    /// Chain length (reasoning depth).
    pub hops: usize,
    /// Confusable sibling keys planted per chain key.
    pub confusers: usize,
}

impl TaskSuite {
    /// GSM8k proxy: deep chains over a medium context (multi-step
    /// arithmetic reasoning with 8-shot CoT ≈ 900-token prefills).
    pub fn gsm8k_proxy() -> Self {
        Self {
            name: "GSM8k-proxy",
            n_pairs: 48,
            hops: 6,
            confusers: 3,
        }
    }

    /// AQuA proxy: the longest contexts (≈1300-token prefills), moderate
    /// depth.
    pub fn aqua_proxy() -> Self {
        Self {
            name: "AQuA-proxy",
            n_pairs: 72,
            hops: 4,
            confusers: 3,
        }
    }

    /// BigBench-Hard proxy: medium context, medium depth symbolic chains.
    pub fn bbh_proxy() -> Self {
        Self {
            name: "BBH-proxy",
            n_pairs: 56,
            hops: 5,
            confusers: 3,
        }
    }

    /// The three suites in Table 2 column order.
    pub fn paper_suites() -> Vec<TaskSuite> {
        vec![Self::gsm8k_proxy(), Self::aqua_proxy(), Self::bbh_proxy()]
    }
}

/// One generated episode: the association table and the chain ground
/// truth.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecallEpisode {
    /// Pair keys, all distinct (position `i` holds pair `i`).
    pub keys: Vec<usize>,
    /// Pair values (the chain's links plus distractor values).
    pub values: Vec<usize>,
    /// Starting cue symbol (a key).
    pub cue: usize,
    /// Number of retrievals to perform.
    pub hops: usize,
    /// Ground-truth symbol at the end of the chain.
    pub answer: usize,
}

impl RecallEpisode {
    /// Generates an episode over a flat (unclustered) symbol space —
    /// every distractor is near-orthogonal, so this variant is easy and
    /// mainly useful for kernel sanity checks.
    ///
    /// # Panics
    ///
    /// Panics if `hops == 0`, `n_pairs < hops`, or the vocabulary is too
    /// small.
    pub fn generate(rng: &mut TensorRng, vocab_size: usize, n_pairs: usize, hops: usize) -> Self {
        Self::generate_clustered(rng, vocab_size, 1, n_pairs, hops, 0)
    }

    /// Generates a clustered episode: chain symbols come from distinct
    /// clusters of `cluster_size`, and each chain key is flanked by up to
    /// `confusers` sibling keys from its own cluster paired with wrong
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if `hops == 0`, `n_pairs < hops·(1 + confusers)`,
    /// `confusers ≥ cluster_size` (when `cluster_size > 1`), or the
    /// vocabulary has too few clusters.
    pub fn generate_clustered(
        rng: &mut TensorRng,
        vocab_size: usize,
        cluster_size: usize,
        n_pairs: usize,
        hops: usize,
        confusers: usize,
    ) -> Self {
        assert!(hops > 0, "need at least one hop");
        assert!(cluster_size > 0, "cluster size must be positive");
        assert_eq!(vocab_size % cluster_size, 0, "vocab not a cluster multiple");
        let chain_pairs = hops * (1 + confusers);
        assert!(
            n_pairs >= chain_pairs,
            "need at least {chain_pairs} pairs for {hops} hops with {confusers} confusers"
        );
        if cluster_size > 1 {
            assert!(
                confusers < cluster_size,
                "confusers must be fewer than cluster siblings"
            );
        } else {
            assert_eq!(confusers, 0, "flat vocabulary cannot host confusers");
        }
        let n_clusters = vocab_size / cluster_size;
        let fillers = n_pairs - chain_pairs;
        // Clusters needed: hops+1 chain clusters + fillers (one key each).
        let clusters_needed = hops + 1 + fillers;
        assert!(
            n_clusters > clusters_needed,
            "vocabulary too small: need {clusters_needed} clusters, have {n_clusters}"
        );
        let cluster_ids = rng.distinct_indices(n_clusters, clusters_needed);
        let pick = |rng: &mut TensorRng, cl: usize| cl * cluster_size + rng.index(cluster_size);

        // Chain symbols, one per distinct cluster.
        let chain: Vec<usize> = cluster_ids[..hops + 1]
            .iter()
            .map(|&cl| pick(rng, cl))
            .collect();
        let filler_clusters = &cluster_ids[hops + 1..];

        let mut keys = Vec::with_capacity(n_pairs);
        let mut values = Vec::with_capacity(n_pairs);
        let in_chain = |s: usize| chain.contains(&s);
        let random_wrong_value = |rng: &mut TensorRng| loop {
            let v = rng.index(vocab_size);
            if !in_chain(v) {
                return v;
            }
        };

        for (i, w) in chain.windows(2).enumerate() {
            keys.push(w[0]);
            values.push(w[1]);
            // Sibling confusers of this chain key.
            let cl = w[0] / cluster_size;
            let all_siblings: Vec<usize> = (0..cluster_size)
                .map(|m| cl * cluster_size + m)
                .filter(|&s| s != w[0])
                .collect();
            // Deterministic sibling order shuffled per hop.
            let perm = rng.permutation(all_siblings.len());
            let siblings: Vec<usize> = perm.iter().map(|&j| all_siblings[j]).collect();
            for &sib in siblings.iter().take(confusers) {
                keys.push(sib);
                values.push(random_wrong_value(rng));
            }
            let _ = i;
        }
        for &cl in filler_clusters {
            keys.push(pick(rng, cl));
            values.push(random_wrong_value(rng));
        }

        // Shuffle pair order so the chain is interleaved with distractors.
        let perm = rng.permutation(n_pairs);
        let keys: Vec<usize> = perm.iter().map(|&i| keys[i]).collect();
        let values: Vec<usize> = perm.iter().map(|&i| values[i]).collect();

        RecallEpisode {
            keys,
            values,
            cue: chain[0],
            hops,
            answer: chain[hops],
        }
    }

    /// Indices of the pairs that lie on the ground-truth chain.
    pub fn chain_pair_indices(&self) -> Vec<usize> {
        let mut idx = Vec::with_capacity(self.hops);
        let mut cur = self.cue;
        for _ in 0..self.hops {
            let i = self
                .keys
                .iter()
                .position(|&k| k == cur)
                .expect("chain key missing");
            idx.push(i);
            cur = self.values[i];
        }
        idx
    }

    /// Follows the chain exactly (oracle retrieval); used by tests to
    /// validate episode construction.
    pub fn oracle_answer(&self) -> usize {
        let mut cur = self.cue;
        for _ in 0..self.hops {
            let idx = self
                .keys
                .iter()
                .position(|&k| k == cur)
                .expect("chain key missing");
            cur = self.values[idx];
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_paper_ordering() {
        let s = TaskSuite::paper_suites();
        assert_eq!(s.len(), 3);
        // AQuA has the longest context, GSM8k the deepest chains.
        assert!(s[1].n_pairs > s[0].n_pairs);
        assert!(s[0].hops > s[1].hops);
    }

    #[test]
    fn keys_are_distinct() {
        let mut rng = TensorRng::new(1);
        let ep = RecallEpisode::generate_clustered(&mut rng, 256, 4, 40, 5, 2);
        let mut k = ep.keys.clone();
        k.sort_unstable();
        k.dedup();
        assert_eq!(k.len(), 40);
    }

    #[test]
    fn oracle_walk_reaches_answer() {
        for seed in 0..20 {
            let mut r = TensorRng::new(seed);
            let ep = RecallEpisode::generate_clustered(&mut r, 512, 4, 48, 6, 2);
            assert_eq!(ep.oracle_answer(), ep.answer);
        }
    }

    #[test]
    fn confusers_share_cluster_with_chain_keys() {
        let mut rng = TensorRng::new(3);
        let ep = RecallEpisode::generate_clustered(&mut rng, 256, 4, 24, 4, 2);
        // Walk the chain; each chain key's cluster must contain exactly
        // 1 (itself) + 2 (confusers) = 3 keys from the episode.
        let mut cur = ep.cue;
        for _ in 0..ep.hops {
            let cl = cur / 4;
            let in_cluster = ep.keys.iter().filter(|&&k| k / 4 == cl).count();
            assert_eq!(in_cluster, 3, "cluster {cl} has {in_cluster} keys");
            let idx = ep.keys.iter().position(|&k| k == cur).unwrap();
            cur = ep.values[idx];
        }
    }

    #[test]
    fn flat_generate_matches_old_behaviour() {
        let mut rng = TensorRng::new(4);
        let ep = RecallEpisode::generate(&mut rng, 128, 20, 4);
        assert_eq!(ep.keys.len(), 20);
        assert_eq!(ep.oracle_answer(), ep.answer);
    }

    #[test]
    fn chain_pair_indices_walk_the_chain() {
        let mut rng = TensorRng::new(9);
        let ep = RecallEpisode::generate_clustered(&mut rng, 256, 4, 24, 4, 2);
        let idx = ep.chain_pair_indices();
        assert_eq!(idx.len(), 4);
        assert_eq!(ep.keys[idx[0]], ep.cue);
        assert_eq!(ep.values[idx[3]], ep.answer);
        for w in idx.windows(2) {
            assert_eq!(ep.values[w[0]], ep.keys[w[1]]);
        }
    }

    #[test]
    fn cue_differs_from_answer() {
        let mut rng = TensorRng::new(5);
        let ep = RecallEpisode::generate_clustered(&mut rng, 128, 4, 12, 3, 1);
        assert_ne!(ep.cue, ep.answer);
    }

    #[test]
    #[should_panic(expected = "vocabulary too small")]
    fn tiny_vocab_panics() {
        // 16 symbols = 4 clusters, but 3 hops + 0 fillers need 4+ clusters.
        RecallEpisode::generate_clustered(&mut TensorRng::new(6), 16, 4, 6, 3, 1);
    }

    #[test]
    #[should_panic(expected = "fewer than cluster siblings")]
    fn too_many_confusers_panics() {
        RecallEpisode::generate_clustered(&mut TensorRng::new(7), 256, 4, 40, 2, 4);
    }
}
