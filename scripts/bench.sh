#!/usr/bin/env bash
# Attention benchmark entry point: runs the attention bench suite and
# writes BENCH_attention.json (median/p95 ns per iteration, per bench
# name) to the repo root.
#
# Usage:
#   scripts/bench.sh            # full measurement run
#   scripts/bench.sh --check    # run fresh, compare vs committed
#                               # BENCH_attention.json, fail if any
#                               # decode or prefill row regressed >25%
#   TURBO_BENCH_SMOKE=1 scripts/bench.sh   # 1-iteration smoke (CI)
#
# In --check mode nothing is overwritten: fresh results go to a temp
# file and are compared against the committed baseline. Under
# TURBO_BENCH_SMOKE the medians are single-iteration noise, so --check
# degrades to schema + row-coverage validation (every baseline gated
# row must still exist) without the median comparison. The regression
# threshold can be overridden with TURBO_BENCH_CHECK_THRESHOLD
# (default 1.25 = fail on >25% slowdown).
#
# The output path can be overridden with TURBO_BENCH_OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
if [[ "${1:-}" == "--check" ]]; then
  CHECK=1
  shift
fi
if [[ $# -gt 0 ]]; then
  echo "usage: scripts/bench.sh [--check]" >&2
  exit 2
fi

BASELINE="$(pwd)/BENCH_attention.json"
if [[ "${CHECK}" == "1" ]]; then
  test -s "${BASELINE}" || { echo "error: no baseline at ${BASELINE}" >&2; exit 1; }
  OUT="$(mktemp -t bench_check.XXXXXX.json)"
  trap 'rm -f "${OUT}"' EXIT
else
  OUT="${TURBO_BENCH_OUT:-${BASELINE}}"
fi
# Cargo runs bench binaries with the package dir as cwd, so anchor
# relative paths at the repo root.
case "${OUT}" in
  /*) ;;
  *) OUT="$(pwd)/${OUT}" ;;
esac

echo "==> cargo bench --bench attention (results -> ${OUT})"
TURBO_BENCH_OUT="${OUT}" cargo bench -q -p turbo-bench --bench attention

test -s "${OUT}" || { echo "error: ${OUT} was not produced" >&2; exit 1; }

if [[ "${CHECK}" == "0" ]]; then
  echo "==> ${OUT}:"
  cat "${OUT}"
  exit 0
fi

echo "==> comparing fresh medians against ${BASELINE}"
TURBO_BENCH_CHECK_THRESHOLD="${TURBO_BENCH_CHECK_THRESHOLD:-1.25}" \
TURBO_BENCH_SMOKE="${TURBO_BENCH_SMOKE:-}" \
python3 - "${BASELINE}" "${OUT}" <<'EOF'
import json, os, sys

# Median-gated prefixes: any row under these regressing past the
# threshold fails the check. Decode rows have always been gated;
# prefill rows joined once the SIMD integer kernels made the turbo
# prefill path actually faster than flash_f32 — before that the prefill
# numbers were recorded but never compared, which let a 1.6x-slower
# quantized prefill hide in the baseline for several PRs. The multilayer
# rows gate the layer-pipeline engines: both the serialized reference
# and the pipelined path must hold their medians, so neither a slow DAG
# build nor pool-dispatch bloat can creep in unnoticed.
GATED_PREFIXES = (
    "attention/decode_over_256/",
    "attention/prefill_256x64/",
    "attention/turbo_prefill_block_size/",
    "attention/multilayer_8layer/",
)
# Coverage-only prefixes: rows must keep existing, but their medians are
# not regression-gated (fleet/serving episodes are whole-scenario runs —
# a full control loop or a 2048-sequence continuous-batching episode —
# tracked for the requests/s and sequences/s trends rather than gated;
# the split-K crossover rows are machine-shaped by design).
COVERAGE_PREFIXES = GATED_PREFIXES + (
    "fleet/",
    "serving/",
    "attention/splitk_crossover/",
)

with open(sys.argv[1]) as f:
    baseline = json.load(f)
with open(sys.argv[2]) as f:
    fresh = json.load(f)

# Schema sanity on the fresh run (same invariants the CI smoke used to
# assert inline).
machine = fresh["machine"]
assert isinstance(machine["available_parallelism"], int) and machine["available_parallelism"] >= 1, machine
assert machine["turbo_runtime_threads"] is None or isinstance(machine["turbo_runtime_threads"], int), machine
assert isinstance(machine["timestamp_unix"], int) and machine["timestamp_unix"] > 0, machine
assert fresh["benches"], "no bench results recorded"
for b in fresh["benches"]:
    assert b["name"] and b["median_ns"] >= 0 and b["p95_ns"] >= 0, b

base = {b["name"]: b["median_ns"] for b in baseline["benches"]}
new = {b["name"]: b["median_ns"] for b in fresh["benches"]}

gated = sorted(n for n in base if n.startswith(GATED_PREFIXES))
for prefix in GATED_PREFIXES:
    assert any(n.startswith(prefix) for n in gated), \
        f"baseline has no rows under {prefix}"
covered = sorted(n for n in base if n.startswith(COVERAGE_PREFIXES))
missing = [n for n in covered if n not in new]
if missing:
    print(f"FAIL: baseline rows missing from fresh run: {missing}", file=sys.stderr)
    sys.exit(1)

smoke = bool(os.environ.get("TURBO_BENCH_SMOKE", ""))
if smoke:
    print(f"bench check (smoke): schema OK, all {len(covered)} gated/coverage rows present; "
          "median comparison skipped (1-iteration smoke medians are noise)")
    sys.exit(0)

threshold = float(os.environ["TURBO_BENCH_CHECK_THRESHOLD"])
failed = []
for name in gated:
    ratio = new[name] / base[name] if base[name] > 0 else 1.0
    verdict = "REGRESSED" if ratio > threshold else "ok"
    print(f"  {verdict:>9}  {name}: {base[name]:.1f} -> {new[name]:.1f} ns ({ratio:.2f}x)")
    if ratio > threshold:
        failed.append(name)
if failed:
    print(f"FAIL: {len(failed)} gated row(s) regressed more than "
          f"{(threshold - 1.0) * 100:.0f}% vs baseline: {failed}", file=sys.stderr)
    sys.exit(1)
print(f"bench check OK: {len(gated)} gated rows within {(threshold - 1.0) * 100:.0f}% of baseline")
EOF
