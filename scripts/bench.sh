#!/usr/bin/env bash
# Attention benchmark entry point: runs the attention bench suite and
# writes BENCH_attention.json (median/p95 ns per iteration, per bench
# name) to the repo root.
#
# Usage:
#   scripts/bench.sh            # full measurement run
#   TURBO_BENCH_SMOKE=1 scripts/bench.sh   # 1-iteration smoke (CI)
#
# The output path can be overridden with TURBO_BENCH_OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${TURBO_BENCH_OUT:-BENCH_attention.json}"
# Cargo runs bench binaries with the package dir as cwd, so anchor
# relative paths at the repo root.
case "${OUT}" in
  /*) ;;
  *) OUT="$(pwd)/${OUT}" ;;
esac

echo "==> cargo bench --bench attention (results -> ${OUT})"
TURBO_BENCH_OUT="${OUT}" cargo bench -q -p turbo-bench --bench attention

test -s "${OUT}" || { echo "error: ${OUT} was not produced" >&2; exit 1; }
echo "==> ${OUT}:"
cat "${OUT}"
