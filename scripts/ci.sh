#!/usr/bin/env bash
# Local CI gate: build, test, lint. Run from anywhere; operates on the
# workspace root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> runtime tests under a 2-worker cap (contention path)"
TURBO_RUNTIME_THREADS=2 cargo test -q -p turbo-runtime

echo "==> kernel tests with SIMD force-disabled (scalar-fallback coverage)"
# The equivalence tests pin both dispatch arms in-process, but the
# dispatched *call sites* (quant encode, SAS rows, attention sweeps)
# only exercise the scalar fallback when detection says so — force it.
TURBO_SIMD=0 cargo test -q -p turbo-tensor -p turbo-softmax -p turbo-quant -p turbo-attention

echo "==> chaos smoke (64 seeded episodes, 2 replicas)"
TURBO_CHAOS_EPISODES=64 cargo test -q -p turbo-integration-tests --test chaos_soak

echo "==> fleet smoke (16 seeded control-plane episodes, bounded SLO recovery)"
TURBO_FLEET_EPISODES=16 cargo test -q -p turbo-integration-tests --test fleet_soak

echo "==> layer-WAL smoke (group-commit crash points + chaos)"
cargo test -q -p turbo-integration-tests --test crash_consistency layer_wal

echo "==> layer-pipeline smoke (2-worker bit-identity, scalar kernels, crash cuts)"
# The pipelined engines' worker-count sweeps run in the plain suite on
# the detected core count; this stage pins the interesting corner — a
# 2-worker pool (real overlap, minimal parallelism) with SIMD forced
# off, covering the pipelined scheduler, the multilayer engine, and the
# mid-pipeline crash-cut replay on the scalar arm.
TURBO_RUNTIME_THREADS=2 TURBO_SIMD=0 cargo test -q -p turbo-gpusim pipelined
TURBO_RUNTIME_THREADS=2 TURBO_SIMD=0 cargo test -q -p turbo-attention multilayer
TURBO_RUNTIME_THREADS=2 TURBO_SIMD=0 \
  cargo test -q -p turbo-integration-tests --test crash_consistency pipelined

echo "==> continuous-batching scheduler smoke (budget invariants + worker bit-identity)"
cargo test -q -p turbo-integration-tests --test continuous_batching

echo "==> sharded-serving smoke (crash-cut re-sharding, 16k-token acceptance episode)"
# The full 128k-token acceptance episode runs in the plain test suite;
# the smoke bounds the context and the soak so this stage stays fast.
TURBO_SHARD_TOKENS=16384 TURBO_RESHARD_EPISODES=8 \
  cargo test -q -p turbo-integration-tests --test resharding

echo "==> bench regression check (smoke: schema + gated-row coverage vs BENCH_attention.json)"
# Full-measurement median gating (>25% decode/prefill regression fails)
# runs via `scripts/bench.sh --check` without TURBO_BENCH_SMOKE; under
# smoke the check validates schema and that every baseline decode and
# prefill row still exists and parses.
TURBO_BENCH_SMOKE=1 scripts/bench.sh --check

echo "==> CI green"
