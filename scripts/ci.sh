#!/usr/bin/env bash
# Local CI gate: build, test, lint. Run from anywhere; operates on the
# workspace root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> CI green"
