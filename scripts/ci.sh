#!/usr/bin/env bash
# Local CI gate: build, test, lint. Run from anywhere; operates on the
# workspace root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> runtime tests under a 2-worker cap (contention path)"
TURBO_RUNTIME_THREADS=2 cargo test -q -p turbo-runtime

echo "==> chaos smoke (64 seeded episodes, 2 replicas)"
TURBO_CHAOS_EPISODES=64 cargo test -q -p turbo-integration-tests --test chaos_soak

echo "==> layer-WAL smoke (group-commit crash points + chaos)"
cargo test -q -p turbo-integration-tests --test crash_consistency layer_wal

echo "==> bench smoke (1 iteration, asserts BENCH_attention.json)"
SMOKE_OUT="$(mktemp -t bench_smoke.XXXXXX.json)"
trap 'rm -f "${SMOKE_OUT}"' EXIT
TURBO_BENCH_SMOKE=1 TURBO_BENCH_OUT="${SMOKE_OUT}" scripts/bench.sh >/dev/null
test -s "${SMOKE_OUT}" || { echo "bench smoke produced no output" >&2; exit 1; }
python3 - "${SMOKE_OUT}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
machine = data["machine"]
assert isinstance(machine["available_parallelism"], int) and machine["available_parallelism"] >= 1, machine
assert machine["turbo_runtime_threads"] is None or isinstance(machine["turbo_runtime_threads"], int), machine
assert isinstance(machine["timestamp_unix"], int) and machine["timestamp_unix"] > 0, machine
benches = data["benches"]
assert benches, "no bench results recorded"
for b in benches:
    assert b["name"] and b["median_ns"] >= 0 and b["p95_ns"] >= b["median_ns"] * 0, b
print(f"bench smoke OK: {len(benches)} results parse; machine metadata parses")
EOF

echo "==> CI green"
