//! Host crate for the cross-crate integration tests in `tests/tests/`.
//!
//! The unit tests live with their modules in each crate; everything here
//! exercises behaviour that only emerges when the crates compose — the
//! full prefill→decode lifecycle, accuracy orderings across backends, and
//! property-based invariants spanning quantization, softmax and attention.

#![forbid(unsafe_code)]
