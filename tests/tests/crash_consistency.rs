//! Crash-consistency acceptance tests for the WAL-backed durable cache.
//!
//! The contract under test: recovery from *any* torn combination of
//! snapshot and write-ahead log yields a cache bit-identical to some
//! valid prefix of the original token stream — K and V never desync, no
//! token is half-applied, and the result is deterministic. The first
//! test enumerates every crash point of a 288-token episode (every WAL
//! record boundary plus eight intra-record byte offsets per record); the
//! second drives the same contract across both snapshot format versions
//! at every framing boundary.

use turbo_attention::{multilayer_episode_pipelined_on, multilayer_episode_serialized};
use turbo_kvcache::{
    frame_boundaries, recover_head_cache, serialize_head_cache_v1, DurableHeadCache,
    DurableLayerSet, HeadKvCache, KvCacheConfig, LayerWriteAheadLog, NeverCheckpoint,
    WriteAheadLog,
};
use turbo_quant::BitWidth;
use turbo_robust::FaultInjector;
use turbo_runtime::Runtime;
use turbo_softmax::Sas;
use turbo_tensor::{Matrix, TensorRng};

fn cfg() -> KvCacheConfig {
    KvCacheConfig {
        bits: BitWidth::Int4,
        group_size: 8,
        buffer_capacity: 8,
    }
}

/// One op of the canonical episode, as it lands in the WAL.
#[derive(Clone, Copy)]
enum Op {
    Append(usize),
    Flush,
}

const TOKENS: usize = 288;
const CHECKPOINT_AT: usize = 32;
const FLUSH_EVERY: usize = 13;

#[test]
fn every_wal_crash_point_recovers_a_bit_identical_prefix() {
    let d = 8;
    let mut rng = TensorRng::new(0xC0A5);
    let kd = rng.normal(TOKENS, d, 0.0, 1.0);
    let vd = rng.normal(TOKENS, d, 0.0, 1.0);

    // Drive the episode: appends with periodic explicit flushes, one
    // checkpoint early on so the WAL carries most of the stream.
    let mut durable = DurableHeadCache::new(d, cfg());
    let mut post_ops: Vec<Op> = Vec::new(); // ops the WAL holds
    for t in 0..TOKENS {
        if t == CHECKPOINT_AT {
            durable.checkpoint();
        }
        durable.try_append(kd.row(t), vd.row(t)).unwrap();
        if t >= CHECKPOINT_AT {
            post_ops.push(Op::Append(t));
        }
        if (t + 1) % FLUSH_EVERY == 0 {
            let logged = durable.cache().buffer_len() > 0;
            durable.try_flush().unwrap();
            if t >= CHECKPOINT_AT && logged {
                post_ops.push(Op::Flush);
            }
        }
    }
    let (snap, wal) = durable.durable_state();
    assert_eq!(
        durable.wal().records(),
        post_ops.len(),
        "the op log must mirror the WAL exactly"
    );

    let boundaries = WriteAheadLog::record_boundaries(&wal);
    assert_eq!(boundaries.len(), post_ops.len() + 1);
    assert_eq!(*boundaries.last().unwrap(), wal.len());
    // The acceptance bar: at least 256 tokens flow through the WAL.
    const { assert!(TOKENS - CHECKPOINT_AT >= 256) };

    // `check` asserts that cutting the WAL at `cut` bytes recovers a
    // cache bit-identical to `reference` (serialized-state equality),
    // with K/V row counts in lockstep.
    let check = |cut: usize, reference: &HeadKvCache, expect_tokens: usize| {
        let (back, outcome) = DurableHeadCache::recover(&snap, &wal[..cut], None)
            .expect("a clean snapshot anchors recovery at any WAL cut");
        let (k, v) = back.cache().dequantize_all();
        assert_eq!(k.rows(), v.rows(), "K/V desynced at cut {cut}");
        assert_eq!(back.cache().len(), expect_tokens, "cut {cut}");
        assert_eq!(outcome.tokens, expect_tokens, "cut {cut}");
        assert_eq!(
            back.cache().to_bytes(),
            reference.to_bytes(),
            "recovered state is not bit-identical to the stream prefix at cut {cut}"
        );
    };

    // Reference advanced in lockstep: first the pre-checkpoint stream
    // (the snapshot's contents), then one WAL op per boundary.
    let mut reference = HeadKvCache::new(d, cfg());
    for t in 0..CHECKPOINT_AT {
        reference.try_append(kd.row(t), vd.row(t)).unwrap();
        if (t + 1) % FLUSH_EVERY == 0 {
            reference.try_flush().unwrap();
        }
    }

    // Cuts inside the WAL header: the whole log drops, the snapshot
    // alone survives.
    for cut in 0..boundaries[0] {
        check(cut, &reference, CHECKPOINT_AT);
    }

    let mut tokens = CHECKPOINT_AT;
    for (n, pair) in std::iter::once(None)
        .chain(post_ops.iter().map(Some))
        .zip(boundaries.iter())
        .enumerate()
    {
        let (op, &boundary) = pair;
        if let Some(op) = op {
            match *op {
                Op::Append(t) => {
                    reference.try_append(kd.row(t), vd.row(t)).unwrap();
                    tokens += 1;
                }
                Op::Flush => reference.try_flush().unwrap(),
            }
        }
        // The clean frame boundary itself...
        check(boundary, &reference, tokens);
        // ...and eight torn cuts inside the *next* record, all of which
        // must fall back to exactly this boundary's state.
        if n + 1 < boundaries.len() {
            let next = boundaries[n + 1];
            for j in 1..=8usize {
                let cut = boundary + j * (next - boundary) / 9;
                if cut > boundary && cut < next {
                    check(cut, &reference, tokens);
                }
            }
        }
    }
    assert_eq!(tokens, TOKENS, "the full episode must replay at the end");
}

/// Corrupting or truncating a snapshot at (and around) every framing
/// boundary, in both format versions, must never panic and must always
/// recover a valid prefix — with or without a WAL replayed on top.
#[test]
fn snapshot_framing_boundaries_recover_cleanly_across_versions() {
    let d = 6;
    let mut rng = TensorRng::new(0xF2A2);
    let data = rng.normal(48, d, 0.0, 1.0);
    let mut cache = HeadKvCache::new(d, cfg());
    for t in 0..44 {
        // 44 = 5 sealed blocks of 8 plus a 4-row partial buffer.
        cache.try_append(data.row(t), data.row(t)).unwrap();
    }

    // A WAL continuing the stream past the snapshot.
    let mut durable = DurableHeadCache::from_cache(cache.clone());
    for t in 44..48 {
        durable.try_append(data.row(t), data.row(t)).unwrap();
    }
    let (_, wal) = durable.durable_state();

    let v2 = cache.to_bytes();
    let v1 = serialize_head_cache_v1(&cache);
    for (version, payload) in [("v2", &v2), ("v1", &v1)] {
        let boundaries = frame_boundaries(payload).expect("clean payload frames");
        assert_eq!(*boundaries.last().unwrap(), payload.len());
        for &b in &boundaries {
            // Truncate exactly on the boundary and one byte to each side.
            for cut in [b.saturating_sub(1), b, (b + 1).min(payload.len())] {
                let torn = &payload[..cut];
                if let Ok((salvaged, report)) = recover_head_cache(torn, None) {
                    assert_eq!(salvaged.len(), report.valid_tokens, "{version} cut {cut}");
                    let (k, v) = salvaged.dequantize_all();
                    assert_eq!(k.rows(), v.rows(), "{version} cut {cut}");
                    assert!(report.valid_tokens <= 44);
                }
                // The durable path must hold the same contract with the
                // WAL replayed on top of the damaged snapshot.
                if let Ok((back, outcome)) = DurableHeadCache::recover(torn, &wal, None) {
                    let (k, v) = back.cache().dequantize_all();
                    assert_eq!(k.rows(), v.rows(), "{version} cut {cut}");
                    assert_eq!(back.cache().len(), outcome.tokens);
                    assert!(outcome.tokens <= 48);
                    if !outcome.snapshot.complete {
                        assert!(
                            outcome.wal.is_none(),
                            "{version} cut {cut}: a torn snapshot must drop the WAL"
                        );
                    }
                }
            }
            // Corrupt one byte just past the boundary (inside the next
            // frame) and recover: never a panic, always a valid prefix.
            if b < payload.len() {
                let mut bad = payload.clone();
                bad[b] ^= 0x5A;
                if let Ok((salvaged, report)) = recover_head_cache(&bad, None) {
                    assert_eq!(salvaged.len(), report.valid_tokens, "{version} corrupt @{b}");
                    let (k, v) = salvaged.dequantize_all();
                    assert_eq!(k.rows(), v.rows());
                }
                if let Ok((back, _)) = DurableHeadCache::recover(&bad, &wal, None) {
                    let (k, v) = back.cache().dequantize_all();
                    assert_eq!(k.rows(), v.rows(), "{version} corrupt @{b}");
                }
            }
        }
    }

    // Sanity: the undamaged payloads recover everything.
    let (full, report) = recover_head_cache(&v2, None).unwrap();
    assert!(report.complete);
    assert_eq!(full.len(), 44);
    let (full1, report1) = recover_head_cache(&v1, None).unwrap();
    assert!(report1.complete);
    assert_eq!(full1.len(), 44);
    let (back, outcome) = DurableHeadCache::recover(&v2, &wal, None).unwrap();
    assert!(outcome.clean);
    assert_eq!(back.cache().len(), 48);
}

/// Crash-point exhaustiveness for the layer-level group-commit WAL: a
/// multi-layer episode (2 layers × 3 heads, distinct K/V per cell) is
/// cut at every record boundary and at eight intra-record offsets per
/// record, and every cut must recover all heads of all layers to the
/// *same* token-count prefix — no cell ever runs ahead of another, and
/// each cell is bit-identical to an uninterrupted cache over that
/// prefix.
#[test]
fn every_layer_wal_crash_point_recovers_a_common_prefix() {
    const LAYERS: usize = 2;
    const HEADS: usize = 3;
    const CELLS: usize = LAYERS * HEADS;
    const LW_TOKENS: usize = 64;
    const LW_CHECKPOINT_AT: usize = 24;
    let d = 4;
    let mut rng = TensorRng::new(0x1A7E);
    // One wide matrix per side; cell c (layer-major) reads columns
    // [c*d, (c+1)*d), so every cell sees a distinct stream and any
    // cross-cell mixup breaks bit-identity.
    let kd = rng.normal(LW_TOKENS, d * CELLS, 0.0, 1.0);
    let vd = rng.normal(LW_TOKENS, d * CELLS, 0.0, 1.0);
    let rows_at = |m: &Matrix, t: usize| -> Vec<Vec<f32>> {
        (0..CELLS).map(|c| m.row(t)[c * d..(c + 1) * d].to_vec()).collect()
    };

    let mut set = DurableLayerSet::new(LAYERS, HEADS, d, cfg(), Box::new(NeverCheckpoint));
    let mut post_ops: Vec<Op> = Vec::new();
    for t in 0..LW_TOKENS {
        if t == LW_CHECKPOINT_AT {
            set.checkpoint(None);
        }
        let kr = rows_at(&kd, t);
        let vr = rows_at(&vd, t);
        let ks: Vec<&[f32]> = kr.iter().map(Vec::as_slice).collect();
        let vs: Vec<&[f32]> = vr.iter().map(Vec::as_slice).collect();
        set.try_append_token(&ks, &vs, None).unwrap();
        if t >= LW_CHECKPOINT_AT {
            post_ops.push(Op::Append(t));
        }
        if (t + 1) % FLUSH_EVERY == 0 {
            let logged = set.layer(0).head(0).buffer_len() > 0;
            set.try_flush_all(None).unwrap();
            if t >= LW_CHECKPOINT_AT && logged {
                post_ops.push(Op::Flush);
            }
        }
    }
    let (snap, wal) = set.durable_state();
    assert_eq!(set.wal().records(), post_ops.len());

    let boundaries = LayerWriteAheadLog::record_boundaries(&wal);
    assert_eq!(boundaries.len(), post_ops.len() + 1);
    assert_eq!(*boundaries.last().unwrap(), wal.len());

    // Reference: one independent head cache per cell, advanced in
    // lockstep with the boundaries.
    let mut reference: Vec<HeadKvCache> =
        (0..CELLS).map(|_| HeadKvCache::new(d, cfg())).collect();
    let apply = |reference: &mut Vec<HeadKvCache>, op: Op| match op {
        Op::Append(t) => {
            for (c, r) in reference.iter_mut().enumerate() {
                r.try_append(&kd.row(t)[c * d..(c + 1) * d], &vd.row(t)[c * d..(c + 1) * d])
                    .unwrap();
            }
        }
        Op::Flush => reference.iter_mut().for_each(|r| r.try_flush().unwrap()),
    };
    for t in 0..LW_CHECKPOINT_AT {
        apply(&mut reference, Op::Append(t));
        if (t + 1) % FLUSH_EVERY == 0 {
            apply(&mut reference, Op::Flush);
        }
    }

    let check = |cut: usize, reference: &[HeadKvCache], expect_tokens: usize| {
        let (back, outcome) = DurableLayerSet::recover(
            LAYERS,
            HEADS,
            d,
            cfg(),
            Box::new(NeverCheckpoint),
            &snap,
            &wal[..cut],
            None,
        )
        .expect("a clean checkpoint anchors recovery at any WAL cut");
        assert_eq!(outcome.tokens, expect_tokens, "cut {cut}");
        for l in 0..LAYERS {
            for h in 0..HEADS {
                let head = back.layer(l).head(h);
                assert_eq!(
                    head.len(),
                    expect_tokens,
                    "cell ({l},{h}) desynced from the group prefix at cut {cut}"
                );
                assert_eq!(
                    head.to_bytes(),
                    reference[l * HEADS + h].to_bytes(),
                    "cell ({l},{h}) not bit-identical at cut {cut}"
                );
            }
        }
    };

    // Cuts inside the WAL header drop the whole log; the checkpoint
    // alone survives.
    for cut in 0..boundaries[0] {
        check(cut, &reference, LW_CHECKPOINT_AT);
    }

    let mut tokens = LW_CHECKPOINT_AT;
    for (n, (op, &boundary)) in std::iter::once(None)
        .chain(post_ops.iter().copied().map(Some))
        .zip(boundaries.iter())
        .enumerate()
    {
        if let Some(op) = op {
            apply(&mut reference, op);
            if let Op::Append(_) = op {
                tokens += 1;
            }
        }
        check(boundary, &reference, tokens);
        if n + 1 < boundaries.len() {
            let next = boundaries[n + 1];
            for j in 1..=8usize {
                let cut = boundary + j * (next - boundary) / 9;
                if cut > boundary && cut < next {
                    check(cut, &reference, tokens);
                }
            }
        }
    }
    assert_eq!(tokens, LW_TOKENS, "the full episode must replay at the end");
}

/// The fsync-style batched WAL flush: with `flush_every_n_tokens = n`, a
/// crash recovers exactly the last synced prefix — `⌊t/n⌋·n` tokens, so
/// at most `n − 1` are lost — and tearing the durable bytes at any
/// record boundary still lands every cell on one common, bit-identical
/// prefix of the stream.
#[test]
fn batched_wal_flush_bounds_loss_and_survives_tears() {
    const LAYERS: usize = 2;
    const HEADS: usize = 2;
    const CELLS: usize = LAYERS * HEADS;
    let d = 4;
    let interval = 4usize;
    let tokens = 27usize; // deliberately not a multiple of the interval
    let mut rng = TensorRng::new(0xBA7C);
    let kd = rng.normal(tokens, d * CELLS, 0.0, 1.0);
    let vd = rng.normal(tokens, d * CELLS, 0.0, 1.0);
    let rows_at = |m: &Matrix, t: usize| -> Vec<Vec<f32>> {
        (0..CELLS).map(|c| m.row(t)[c * d..(c + 1) * d].to_vec()).collect()
    };

    let mut set = DurableLayerSet::new(LAYERS, HEADS, d, cfg(), Box::new(NeverCheckpoint));
    set.set_flush_every_n_tokens(interval);
    for t in 0..tokens {
        let kr = rows_at(&kd, t);
        let vr = rows_at(&vd, t);
        let ks: Vec<&[f32]> = kr.iter().map(Vec::as_slice).collect();
        let vs: Vec<&[f32]> = vr.iter().map(Vec::as_slice).collect();
        set.try_append_token(&ks, &vs, None).unwrap();
    }
    assert_eq!(set.tokens(), tokens, "in-memory set holds every token");

    let (snap, wal) = set.durable_state();
    let durable_tokens = (tokens / interval) * interval;

    // The staleness bound, untorn: the durable WAL ends at the last sync.
    let (_, outcome) = DurableLayerSet::recover(
        LAYERS,
        HEADS,
        d,
        cfg(),
        Box::new(NeverCheckpoint),
        &snap,
        &wal,
        None,
    )
    .unwrap();
    assert_eq!(outcome.tokens, durable_tokens);
    assert!(
        tokens - outcome.tokens < interval,
        "batched flush lost more than n − 1 tokens"
    );

    // Tears at record boundaries: boundary i holds exactly i appends (no
    // flush records in this episode), and every recovered cell must be
    // bit-identical to that prefix streamed into an independent cache.
    let mut reference: Vec<HeadKvCache> = (0..CELLS).map(|_| HeadKvCache::new(d, cfg())).collect();
    let mut applied = 0usize;
    for (i, &cut) in LayerWriteAheadLog::record_boundaries(&wal).iter().enumerate() {
        while applied < i {
            for (c, r) in reference.iter_mut().enumerate() {
                r.try_append(
                    &kd.row(applied)[c * d..(c + 1) * d],
                    &vd.row(applied)[c * d..(c + 1) * d],
                )
                .unwrap();
            }
            applied += 1;
        }
        let (back, outcome) = DurableLayerSet::recover(
            LAYERS,
            HEADS,
            d,
            cfg(),
            Box::new(NeverCheckpoint),
            &snap,
            &wal[..cut],
            None,
        )
        .unwrap();
        assert_eq!(outcome.tokens, i, "boundary {i}");
        for l in 0..LAYERS {
            for h in 0..HEADS {
                let head = back.layer(l).head(h);
                let oracle = &reference[l * HEADS + h];
                assert_eq!(head.len(), oracle.len(), "cell ({l},{h}) at cut {cut}");
                assert_eq!(head.key_buffer(), oracle.key_buffer());
                assert_eq!(head.value_buffer(), oracle.value_buffer());
                assert_eq!(head.dequantize_all(), oracle.dequantize_all());
            }
        }
    }
}

/// Seeded chaos over the layer WAL's durable state: arbitrary
/// truncations and byte corruptions of checkpoint and log must never
/// panic, and whatever `recover_or_empty` salvages must keep every cell
/// at one common token count.
#[test]
fn layer_wal_chaos_smoke() {
    const LAYERS: usize = 2;
    const HEADS: usize = 3;
    const CELLS: usize = LAYERS * HEADS;
    let d = 4;
    let mut rng = TensorRng::new(0x50AC);
    let data = rng.normal(40, d * CELLS, 0.0, 1.0);
    let mut set = DurableLayerSet::new(LAYERS, HEADS, d, cfg(), Box::new(NeverCheckpoint));
    for t in 0..40 {
        if t == 16 {
            set.checkpoint(None);
        }
        let rows: Vec<&[f32]> = (0..CELLS).map(|c| &data.row(t)[c * d..(c + 1) * d]).collect();
        set.try_append_token(&rows, &rows, None).unwrap();
    }
    let (snap, wal) = set.durable_state();

    let mut inj = FaultInjector::new(0xC4A05);
    for round in 0..128 {
        let mut s = snap.clone();
        let mut w = wal.clone();
        match round % 4 {
            0 => {
                inj.truncate_bytes(&mut w);
            }
            1 => {
                inj.corrupt_bytes(&mut w, 1 + round % 3);
            }
            2 => {
                inj.truncate_bytes(&mut s);
            }
            _ => {
                inj.corrupt_bytes(&mut s, 1 + round % 3);
                inj.truncate_bytes(&mut w);
            }
        }
        let (back, outcome) = DurableLayerSet::recover_or_empty(
            LAYERS,
            HEADS,
            d,
            cfg(),
            Box::new(NeverCheckpoint),
            &s,
            &w,
            None,
        );
        assert!(outcome.tokens <= 40, "round {round}");
        for l in 0..LAYERS {
            for h in 0..HEADS {
                let head = back.layer(l).head(h);
                assert_eq!(
                    head.len(),
                    outcome.tokens,
                    "round {round}: cell ({l},{h}) desynced"
                );
                let (k, v) = head.dequantize_all();
                assert_eq!(k.rows(), v.rows(), "round {round}");
            }
        }
    }
}

/// Killing the pipelined multi-layer engine mid-episode loses nothing
/// the serialized engine would have kept: both engines emit
/// byte-identical durable state, and at *every* WAL cut — each record
/// boundary plus eight torn offsets inside the following record —
/// recovery from the pipelined WAL lands on exactly the same token
/// prefix, with every cell bit-identical to recovery from the serialized
/// WAL at the same cut. The pipeline's commit chain joins at the token
/// boundary, so a kill can never expose a half-token.
#[test]
fn pipelined_crash_cut_replays_same_wal_prefix_as_serialized() {
    const ML_LAYERS: usize = 3;
    const ML_HEADS: usize = 2;
    const PROMPT: usize = 14;
    const DECODE: usize = 6;
    let d = 4;
    let mut rng = TensorRng::new(0xD1A6);
    let prompt = rng.normal(PROMPT, ML_HEADS * d, 0.0, 1.0);
    let decode_in = rng.normal(DECODE, ML_HEADS * d, 0.0, 1.0);
    let sas = Sas::paper_default();
    let fresh = || {
        let mut set =
            DurableLayerSet::new(ML_LAYERS, ML_HEADS, d, cfg(), Box::new(NeverCheckpoint));
        set.set_flush_every_n_tokens(1);
        set
    };

    let mut ser = fresh();
    multilayer_episode_serialized(&mut ser, &prompt, &decode_in, &sas, 4, None);
    let rt = Runtime::with_workers(8);
    let mut pip = fresh();
    multilayer_episode_pipelined_on(&rt, &mut pip, &prompt, &decode_in, &sas, 4, None);

    let (snap_s, wal_s) = ser.durable_state();
    let (snap_p, wal_p) = pip.durable_state();
    assert_eq!(snap_s, snap_p, "engines must checkpoint identically");
    assert_eq!(wal_s, wal_p, "engines must emit byte-identical WALs");

    let boundaries = LayerWriteAheadLog::record_boundaries(&wal_p);
    let recover = |snap: &[u8], wal: &[u8]| {
        DurableLayerSet::recover(
            ML_LAYERS,
            ML_HEADS,
            d,
            cfg(),
            Box::new(NeverCheckpoint),
            snap,
            wal,
            None,
        )
        .expect("a clean checkpoint anchors recovery at any WAL cut")
    };

    let mut prev_tokens = 0usize;
    for (n, &boundary) in boundaries.iter().enumerate() {
        let mut cuts = vec![boundary];
        if n + 1 < boundaries.len() {
            let next = boundaries[n + 1];
            for j in 1..=8usize {
                let cut = boundary + j * (next - boundary) / 9;
                if cut > boundary && cut < next {
                    cuts.push(cut);
                }
            }
        }
        for cut in cuts {
            let (back_p, out_p) = recover(&snap_p, &wal_p[..cut]);
            let (back_s, out_s) = recover(&snap_s, &wal_s[..cut]);
            assert_eq!(
                out_p.tokens, out_s.tokens,
                "pipelined kill at cut {cut} replays a different prefix"
            );
            for l in 0..ML_LAYERS {
                for h in 0..ML_HEADS {
                    assert_eq!(
                        back_p.layer(l).head(h).to_bytes(),
                        back_s.layer(l).head(h).to_bytes(),
                        "cell ({l},{h}) diverged at cut {cut}"
                    );
                }
            }
            // A torn cut falls back to the boundary before it: token
            // counts never run ahead of the clean-boundary prefix.
            assert_eq!(out_p.tokens, prev_tokens, "cut {cut}");
        }
        // Advance the expected prefix for the *next* boundary: each
        // group-commit record carries exactly one token.
        if n + 1 < boundaries.len() {
            let (_, out_next) = recover(&snap_p, &wal_p[..boundaries[n + 1]]);
            assert!(
                out_next.tokens == prev_tokens || out_next.tokens == prev_tokens + 1,
                "a single WAL record must carry at most one token"
            );
            prev_tokens = out_next.tokens;
        }
    }
    assert_eq!(
        prev_tokens,
        PROMPT + DECODE,
        "the full episode must replay from the undamaged WAL"
    );
}

/// The recovered prefix is usable, not just structurally coherent: a
/// rebuilt cache accepts further appends and dequantizes to the same
/// values as an uninterrupted cache over the same stream.
#[test]
fn recovered_prefix_resumes_the_stream_seamlessly() {
    let d = 4;
    let mut rng = TensorRng::new(0xBEEF);
    let data: Matrix = rng.normal(64, d, 0.0, 1.0);
    let mut durable = DurableHeadCache::new(d, cfg());
    for t in 0..40 {
        if t == 24 {
            durable.checkpoint();
        }
        durable.try_append(data.row(t), data.row(t)).unwrap();
    }
    let (snap, wal) = durable.durable_state();
    // Tear mid-record, recover, and finish the stream on the survivor.
    let boundaries = WriteAheadLog::record_boundaries(&wal);
    let cut = (boundaries[7] + boundaries[8]) / 2;
    let (mut back, outcome) = DurableHeadCache::recover(&snap, &wal[..cut], None).unwrap();
    let resumed_from = outcome.tokens;
    assert_eq!(resumed_from, 24 + 7, "seven WAL records survive the tear");
    for t in resumed_from..64 {
        back.try_append(data.row(t), data.row(t)).unwrap();
    }
    let mut uninterrupted = HeadKvCache::new(d, cfg());
    for t in 0..64 {
        uninterrupted.try_append(data.row(t), data.row(t)).unwrap();
    }
    assert_eq!(back.cache().len(), 64);
    assert_eq!(
        back.cache().dequantize_all(),
        uninterrupted.dequantize_all(),
        "the resumed stream must be value-identical to an uninterrupted one"
    );
}
