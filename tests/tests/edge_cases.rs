//! Edge-case and failure-injection integration tests: degenerate shapes,
//! extreme values, and API-misuse paths across the crate stack.

use turbo_attention::{
    naive_attention, turbo_attend_cache, GqaLayout, Masking, TurboAttention, TurboConfig,
};
use turbo_kvcache::{HeadKvCache, KvCacheConfig};
use turbo_quant::{BitWidth, ProgressiveBlock, SymQuantized};
use turbo_softmax::Sas;
use turbo_tensor::{Matrix, TensorRng};

#[test]
fn one_by_one_attention() {
    // The smallest possible attention problem: 1 token, 1 channel.
    let q = Matrix::from_rows(&[&[2.0]]);
    let k = Matrix::from_rows(&[&[3.0]]);
    let v = Matrix::from_rows(&[&[5.0]]);
    let out = naive_attention(&q, &k, &v, Masking::Causal);
    assert_eq!(out.get(0, 0), 5.0);

    let engine = TurboAttention::new(TurboConfig {
        block_r: 1,
        block_c: 1,
        group_size: 1,
        buffer_capacity: 1,
        ..TurboConfig::default()
    });
    let (turbo_out, cache) = engine.prefill_head(&q, &k, &v);
    assert!((turbo_out.get(0, 0) - 5.0).abs() < 0.15);
    assert_eq!(cache.len(), 1);
}

#[test]
fn gqa_with_group_one_equals_mha() {
    // kv_heads == q_heads degenerates to plain multi-head attention.
    let layout = GqaLayout::new(2, 2);
    assert_eq!(layout.group_size(), 1);
    let mut rng = TensorRng::new(1);
    let qs: Vec<Matrix> = (0..2).map(|_| rng.normal(16, 8, 0.0, 1.0)).collect();
    let ks: Vec<Matrix> = (0..2).map(|_| rng.normal(16, 8, 0.0, 1.0)).collect();
    let vs: Vec<Matrix> = (0..2).map(|_| rng.normal(16, 8, 0.0, 1.0)).collect();
    let engine = TurboAttention::default();
    let (gqa_outs, _) = engine.prefill_layer_gqa(layout, &qs, &ks, &vs, 0);
    let (mha_outs, _) = engine.prefill_layer(&qs, &ks, &vs, &[BitWidth::Int4; 2]);
    assert_eq!(gqa_outs, mha_outs);
}

#[test]
fn parallel_layer_with_single_head() {
    let mut rng = TensorRng::new(2);
    let q = vec![rng.normal(8, 4, 0.0, 1.0)];
    let k = vec![rng.normal(8, 4, 0.0, 1.0)];
    let v = vec![rng.normal(8, 4, 0.0, 1.0)];
    let engine = TurboAttention::default();
    let (serial, _) = engine.prefill_layer(&q, &k, &v, &[BitWidth::Int4]);
    let (parallel, _) = engine.prefill_layer_parallel(&q, &k, &v, &[BitWidth::Int4]);
    assert_eq!(serial, parallel);
}

#[test]
fn huge_magnitude_activations_survive_the_quantized_path() {
    // 1e4-scale activations: scales absorb magnitude, no overflow anywhere.
    let mut rng = TensorRng::new(3);
    let q = rng.normal(32, 8, 0.0, 1.0e4);
    let k = rng.normal(32, 8, 0.0, 1.0e4);
    let v = rng.normal(32, 8, 0.0, 1.0e4);
    let engine = TurboAttention::default();
    let (out, _) = engine.prefill_head(&q, &k, &v);
    assert!(out.as_slice().iter().all(|x| x.is_finite()));
    // Attention output stays within V's range (convexity).
    assert!(out.max() <= v.max() * 1.01);
    assert!(out.min() >= v.min() * 1.01);
}

#[test]
fn tiny_magnitude_activations_survive_too() {
    let mut rng = TensorRng::new(4);
    let q = rng.normal(16, 8, 0.0, 1.0e-5);
    let k = rng.normal(16, 8, 0.0, 1.0e-5);
    let v = rng.normal(16, 8, 0.0, 1.0e-5);
    let engine = TurboAttention::default();
    let (out, _) = engine.prefill_head(&q, &k, &v);
    assert!(out.as_slice().iter().all(|x| x.is_finite()));
}

#[test]
fn constant_keys_give_uniform_attention() {
    // All keys identical -> scores identical -> output = mean of values.
    let q = Matrix::from_rows(&[&[1.0, 1.0]]);
    let k = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5], &[0.5, 0.5]]);
    let v = Matrix::from_rows(&[&[0.0, 3.0], &[3.0, 0.0], &[0.0, 0.0]]);
    let exact = naive_attention(&q, &k, &v, Masking::Full);
    assert!((exact.get(0, 0) - 1.0).abs() < 1e-6);
    assert!((exact.get(0, 1) - 1.0).abs() < 1e-6);

    let sas = Sas::paper_default();
    let mut cache = HeadKvCache::new(2, KvCacheConfig::default());
    for t in 0..3 {
        cache.append(k.row(t), v.row(t));
    }
    let out = turbo_attend_cache(&[1.0, 1.0], &cache, &sas);
    assert!((out[0] - 1.0).abs() < 0.1);
    assert!((out[1] - 1.0).abs() < 0.1);
}

#[test]
fn zero_queries_attend_uniformly() {
    // A zero query scores every key 0: softmax is uniform regardless of
    // quantization (scale of an all-zero row is the safe default 1.0).
    let mut rng = TensorRng::new(5);
    let k = rng.normal(8, 4, 0.0, 1.0);
    let v = rng.normal(8, 4, 0.0, 1.0);
    let sas = Sas::paper_default();
    let mut cache = HeadKvCache::new(4, KvCacheConfig::default());
    for t in 0..8 {
        cache.append(k.row(t), v.row(t));
    }
    let out = turbo_attend_cache(&[0.0; 4], &cache, &sas);
    let mean: Vec<f32> = (0..4)
        .map(|c| (0..8).map(|t| v.get(t, c)).sum::<f32>() / 8.0)
        .collect();
    for (a, b) in out.iter().zip(&mean) {
        assert!((a - b).abs() < 0.1, "{a} vs {b}");
    }
}

#[test]
fn progressive_block_of_single_element() {
    let m = Matrix::from_rows(&[&[0.75]]);
    let pq = ProgressiveBlock::quantize(&m, BitWidth::Int2, 1);
    let back = pq.dequantize();
    assert!((back.get(0, 0) - 0.75).abs() < 0.02);
}

#[test]
fn sym_quantized_handles_negative_only_blocks() {
    let m = Matrix::from_rows(&[&[-3.0, -1.0, -2.0]]);
    let q = SymQuantized::quantize(&m);
    let back = q.dequantize();
    for c in 0..3 {
        assert!((back.get(0, c) - m.get(0, c)).abs() <= q.scale() * 0.5 + 1e-6);
    }
}

#[test]
fn decode_after_many_flushes_stays_stable() {
    // 1000 tokens through a 16-token buffer: 62 flushes; error must not
    // drift upward over time.
    let mut rng = TensorRng::new(6);
    let d = 8;
    let sas = Sas::paper_default();
    let mut cache = HeadKvCache::new(
        d,
        KvCacheConfig {
            bits: BitWidth::Int4,
            group_size: 16,
            buffer_capacity: 16,
        },
    );
    let data = rng.normal(1000, d, 0.0, 1.0);
    for t in 0..1000 {
        cache.append(data.row(t), data.row(t));
    }
    let q = rng.normal(1, d, 0.0, 1.0);
    let out = turbo_attend_cache(q.row(0), &cache, &sas);
    let exact = naive_attention(&q, &data, &data, Masking::Causal);
    for (a, b) in out.iter().zip(exact.row(0)) {
        assert!((a - b).abs() < 0.2, "{a} vs {b}");
    }
}

#[test]
fn sliding_window_narrower_than_block_sizes() {
    // Window of 3 with blocks of 16: masking must dominate tiling.
    let mut rng = TensorRng::new(7);
    let q = rng.normal(40, 8, 0.0, 1.0);
    let k = rng.normal(40, 8, 0.0, 1.0);
    let v = rng.normal(40, 8, 0.0, 1.0);
    let exact = naive_attention(&q, &k, &v, Masking::SlidingWindow(3));
    let tiled = turbo_attention::flash_attention(&q, &k, &v, Masking::SlidingWindow(3), 16, 16);
    assert!(turbo_tensor::max_abs_error(&exact, &tiled) < 1e-5);
}

#[test]
fn fp8_and_f16_rounding_agree_on_exact_grid() {
    // Powers of two in both grids are fixed points of both roundings.
    for e in -6..=8 {
        let x = (2.0f32).powi(e);
        assert_eq!(turbo_tensor::round_f16(x), x);
        assert_eq!(turbo_tensor::round_e4m3(x), x);
    }
}

#[test]
fn persist_deserialization_survives_arbitrary_byte_mutations() {
    // Deterministic fuzz loop: every mutation of a valid payload must
    // yield either a clean `PersistError` or a coherent cache — never a
    // panic. This covers the header (uncovered by checksums) as well as
    // the CRC-protected body.
    use turbo_kvcache::persist::{deserialize_head_cache, serialize_head_cache};
    use turbo_robust::FaultInjector;

    let mut rng = TensorRng::new(0xF022);
    let mut cache = HeadKvCache::new(
        6,
        KvCacheConfig {
            bits: BitWidth::Int4,
            group_size: 8,
            buffer_capacity: 8,
        },
    );
    let data = rng.normal(37, 6, 0.0, 1.0);
    for t in 0..37 {
        cache.append(data.row(t), data.row(t));
    }
    let clean = serialize_head_cache(&cache);
    assert_eq!(deserialize_head_cache(&clean).unwrap().len(), 37);

    let mut inj = FaultInjector::new(0xF023);
    let mut decoded_ok = 0usize;
    for round in 0..512 {
        let mut payload = clean.clone();
        match round % 4 {
            // Byte corruption anywhere (header included).
            0 | 1 => {
                let n = 1 + inj.pick(8);
                inj.corrupt_bytes(&mut payload, n);
            }
            // Truncation to a strictly shorter prefix.
            2 => {
                inj.truncate_bytes(&mut payload);
            }
            // Both.
            _ => {
                inj.truncate_bytes(&mut payload);
                if !payload.is_empty() {
                    let n = 1 + inj.pick(4);
                    inj.corrupt_bytes(&mut payload, n);
                }
            }
        }
        match deserialize_head_cache(&payload) {
            Err(_) => {}
            Ok(c) => {
                // If it decodes, it must be internally coherent.
                decoded_ok += 1;
                assert_eq!(c.head_dim(), 6);
                let (k, v) = c.dequantize_all();
                assert_eq!(k.rows(), c.len());
                assert_eq!(v.rows(), c.len());
            }
        }
        // The recovery path must hold the same never-panic contract.
        if let Ok((salvaged, report)) = turbo_kvcache::recover_head_cache(&payload, None) {
            assert_eq!(salvaged.len(), report.valid_tokens);
        }
    }
    // Nearly everything must be rejected: the only undetectable byte
    // mutations are ones that strike a stored checksum AND its covered
    // bytes in a colliding way, which the IEEE CRC makes vanishingly rare.
    assert!(
        decoded_ok <= 8,
        "suspiciously many corrupt payloads decoded: {decoded_ok}/512"
    );
}

#[test]
fn wal_recovery_survives_arbitrary_byte_mutations() {
    // The WAL sibling of the persist fuzz loop above: every mutation of
    // a valid write-ahead log must yield a clean recovery to some valid
    // prefix of the token stream — never a panic, never a desynced K/V
    // pair, never more tokens than were written.
    use turbo_kvcache::DurableHeadCache;
    use turbo_robust::FaultInjector;

    let mut rng = TensorRng::new(0xF0A4);
    let data = rng.normal(37, 6, 0.0, 1.0);
    let mut durable = DurableHeadCache::new(
        6,
        KvCacheConfig {
            bits: BitWidth::Int4,
            group_size: 8,
            buffer_capacity: 8,
        },
    );
    for t in 0..37 {
        if t == 16 {
            durable.checkpoint();
        }
        durable.try_append(data.row(t), data.row(t)).unwrap();
        if (t + 1) % 7 == 0 {
            durable.try_flush().unwrap();
        }
    }
    let (snap, clean_wal) = durable.durable_state();

    let mut inj = FaultInjector::new(0xF024);
    let mut complete_despite_damage = 0usize;
    for round in 0..512 {
        let mut wal = clean_wal.clone();
        let damaged = match round % 4 {
            // Byte corruption anywhere (the WAL header included).
            0 | 1 => {
                let n = 1 + inj.pick(8);
                !inj.corrupt_bytes(&mut wal, n).is_empty()
            }
            // Truncation to a strictly shorter prefix.
            2 => {
                inj.truncate_bytes(&mut wal);
                wal.len() < clean_wal.len()
            }
            // Both.
            _ => {
                inj.truncate_bytes(&mut wal);
                if !wal.is_empty() {
                    let n = 1 + inj.pick(4);
                    inj.corrupt_bytes(&mut wal, n);
                }
                true
            }
        };
        let (back, outcome) = DurableHeadCache::recover(&snap, &wal, None)
            .expect("a clean snapshot anchors recovery under any WAL damage");
        // Whatever survived is a coherent prefix: K/V in lockstep and
        // never longer than the original stream.
        let (k, v) = back.cache().dequantize_all();
        assert_eq!(k.rows(), v.rows(), "round {round}");
        assert_eq!(back.cache().len(), outcome.tokens, "round {round}");
        assert!(outcome.tokens >= 16, "the snapshot prefix always survives");
        assert!(outcome.tokens <= 37, "round {round}: tokens from nowhere");
        if damaged && outcome.clean {
            complete_despite_damage += 1;
        }
    }
    // Every WAL byte sits under a CRC32 frame, so damage that still
    // replays as a complete log should be vanishingly rare (only a
    // truncation landing exactly on the final boundary qualifies).
    assert!(
        complete_despite_damage <= 8,
        "suspiciously many damaged WALs replayed clean: {complete_despite_damage}/512"
    );
}
