//! Deterministic chaos soak: thousands of seeded adversarial episodes
//! against the replicated serving stack.
//!
//! Every episode draws a [`ChaosPlan`] (kills, restarts, silent WAL rot,
//! activation faults, memory-pressure spikes) and a seeded workload from
//! one seed, runs the replica set through it, and asserts the crash
//! -consistency contract:
//!
//! * **exactly-once accounting** — `completed + truncated + rejected`
//!   equals the number of submitted requests;
//! * **zero token loss** — every durable prefix token of every killed
//!   replica is either recovered by snapshot + WAL replay or re-prefilled
//!   (and the ledger proves which);
//! * **engine survival** — PR-1 activation faults scheduled by the plan
//!   are screened by the robust attention engine, never surfacing a
//!   non-finite output;
//! * **per-seed determinism** — re-running an episode with the same seed
//!   reproduces the exact same `ReplicaSetStats`, bit for bit.
//!
//! The episode count defaults to 1000 and can be overridden with the
//! `TURBO_CHAOS_EPISODES` environment variable (CI runs a bounded smoke
//! of 64; soak rigs can turn it up).

use turbo_attention::robust::RobustAttention;
use turbo_attention::TurboConfig;
use turbo_gpusim::{
    run_replica_set, AttnMethod, GpuSpec, ModelGeometry, ReplicaSetConfig, WorkloadSpec,
};
use turbo_robust::{ChaosAction, ChaosConfig, ChaosPlan, FaultInjector, HealthEvent, HealthStats};
use turbo_tensor::TensorRng;

fn episodes() -> usize {
    std::env::var("TURBO_CHAOS_EPISODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000)
}

#[test]
fn chaos_soak_holds_exactly_once_and_zero_loss_across_seeded_episodes() {
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let chaos_cfg = ChaosConfig {
        replicas: 2,
        horizon: 20.0,
        ..ChaosConfig::default()
    };
    let rs_cfg = ReplicaSetConfig {
        prefix_tokens: 64,
        prefix_dim: 4,
        ..ReplicaSetConfig::default()
    };
    let n = episodes();
    assert!(n > 0, "soak needs at least one episode");
    let mut total_kills = 0usize;
    let mut total_recovered = 0usize;
    let mut total_reprefilled = 0usize;
    for ep in 0..n {
        let seed = 0xC4A0_5000 + ep as u64;
        let plan = ChaosPlan::generate(seed, &chaos_cfg);
        let reqs = WorkloadSpec {
            n: 10,
            rate: 2.0,
            prompt: 512,
            gen: 16,
            seed,
        }
        .requests();
        let health = HealthStats::new();
        let stats = run_replica_set(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &plan.events,
            &rs_cfg,
            seed,
            Some(&health),
        );

        // Exactly-once: every submitted request lands in exactly one
        // terminal bucket.
        assert_eq!(stats.total, reqs.len(), "episode {ep}");
        assert_eq!(stats.accounted(), stats.total, "episode {ep}: ledger leak");

        // Zero token loss beyond what the plan itself declares: each of
        // the `kills × 64` durable prefix tokens is recovered or
        // re-prefilled, never silently dropped.
        assert_eq!(stats.lost_tokens, 0, "episode {ep}: silent token loss");
        assert_eq!(
            stats.recovered_tokens + stats.reprefilled_tokens,
            stats.kills * rs_cfg.prefix_tokens,
            "episode {ep}: durability ledger does not balance"
        );
        assert_eq!(stats.rebuilds, stats.kills, "episode {ep}");
        assert!(
            stats.makespan.is_finite() && stats.makespan >= 0.0,
            "episode {ep}"
        );
        assert!(stats.generated_tokens <= reqs.len() * 16, "episode {ep}");

        // Health telemetry agrees with the ledger.
        assert_eq!(
            health.count(HealthEvent::ReplicaKilled),
            stats.kills as u64,
            "episode {ep}"
        );
        assert_eq!(
            health.count(HealthEvent::ReplicaRebuilt),
            stats.rebuilds as u64,
            "episode {ep}"
        );
        if stats.kills > 0 {
            // Every rebuild either replays the WAL or (when the tear hit
            // the WAL header) explicitly drops it — never neither.
            assert!(
                health.count(HealthEvent::WalReplay) + health.count(HealthEvent::WalRecordDropped)
                    >= stats.kills as u64,
                "episode {ep}: rebuilds must replay or drop the WAL"
            );
        }
        total_kills += stats.kills;
        total_recovered += stats.recovered_tokens;
        total_reprefilled += stats.reprefilled_tokens;

        // Engine-level chaos: the plan's activation faults are applied
        // straight to the robust attention engine mid-decode (the PR-1
        // fault class); outputs must stay finite with every token cached.
        let faults: Vec<usize> = plan
            .engine_events()
            .iter()
            .filter_map(|e| match e.action {
                ChaosAction::InjectFault { elements } => Some(elements),
                _ => None,
            })
            .collect();
        if !faults.is_empty() {
            let robust = RobustAttention::new(TurboConfig::default());
            let mut rng = TensorRng::new(seed ^ 0xFA17);
            let mut inj = FaultInjector::new(seed ^ 0xFA18);
            let mut cache = robust.new_cache(8);
            let steps = faults.len() * 2;
            for t in 0..steps {
                let mut q = rng.normal(1, 8, 0.0, 1.0);
                let k = rng.normal(1, 8, 0.0, 1.0);
                let v = rng.normal(1, 8, 0.0, 1.0);
                if t % 2 == 0 {
                    inj.inject_non_finite(&mut q, faults[t / 2]);
                }
                let out = robust
                    .try_decode(q.row(0), k.row(0), v.row(0), &mut cache)
                    .expect("decode must survive injected faults");
                assert!(
                    out.iter().all(|x| x.is_finite()),
                    "episode {ep}: non-finite output at step {t}"
                );
            }
            assert_eq!(cache.len(), steps, "episode {ep}: token dropped");
        }

        // Deterministic replay: a sampled subset of episodes re-runs and
        // must reproduce the end state bit for bit.
        if ep % 16 == 0 {
            let again = run_replica_set(
                &gpu,
                &geom,
                AttnMethod::FlashFp16,
                &reqs,
                &plan.events,
                &rs_cfg,
                seed,
                None,
            );
            assert_eq!(stats, again, "episode {ep}: seed replay diverged");
        }
    }
    // The soak must actually exercise the crash path, and the WAL must
    // carry real weight: across all episodes, replay recovers tokens.
    assert!(total_kills > 0, "the chaos plans never killed anything");
    assert!(total_recovered > 0, "WAL replay never recovered a token");
    assert_eq!(
        total_recovered + total_reprefilled,
        total_kills * rs_cfg.prefix_tokens
    );
}
