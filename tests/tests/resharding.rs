//! Crash-cut acceptance suite for sharded long-context re-sharding.
//!
//! The contract under test: when a shard of a long-context episode is
//! killed, tearing its WAL at *any* byte offset, the re-shard protocol
//! recovers a bit-identical common prefix, migrates it to the
//! survivors, re-prefills only the lost suffix, and the episode ends
//! with the exactly-once request ledger, the zero-token-loss ledger,
//! and a context fingerprint identical to the no-fault run — across
//! 2-, 4-, and 8-shard layouts and at 1/2/8 runtime workers.
//!
//! Structure:
//!
//! * an exhaustive layer-set sweep cuts the victim's WAL at every
//!   record boundary plus intra-record offsets and proves recovery is
//!   prefix-consistent, bit for bit, per shard layout;
//! * an episode sweep drives the full re-shard protocol at every
//!   record-boundary cut (plus mid-record tears) and pins the ledgers;
//! * a seeded chaos soak replays generated plans (kills + WAL rot +
//!   degraded zones) through the sharded path, episode count scaled by
//!   `TURBO_RESHARD_EPISODES`;
//! * a long-context acceptance episode (`TURBO_SHARD_TOKENS`, default
//!   131072 tokens over 4 shards) survives a mid-episode kill *and* a
//!   degraded-zone burst bit-identically at 1, 2, and 8 workers.

use turbo_gpusim::{
    run_sharded_episode, run_sharded_episode_on, uniform_workload, AttnMethod, GpuSpec,
    ModelGeometry, RequestSpec, ShardMap, ShardedConfig, ShardedStats,
};
use turbo_kvcache::{DurableLayerSet, LayerWriteAheadLog, RecordBudget};
use turbo_robust::{ChaosAction, ChaosConfig, ChaosEvent, ChaosPlan, HealthEvent, HealthStats};
use turbo_runtime::Runtime;
use turbo_tensor::TensorRng;

fn setup() -> (GpuSpec, ModelGeometry) {
    (GpuSpec::a100_80gb(), ModelGeometry::phi3_medium())
}

fn method() -> AttnMethod {
    AttnMethod::Turbo { kv_bits: 3.0 }
}

fn cfg(shards: usize, context_tokens: usize) -> ShardedConfig {
    ShardedConfig {
        shards,
        context_tokens,
        ..ShardedConfig::default()
    }
}

fn workload() -> Vec<RequestSpec> {
    uniform_workload(8, 2.0, 192, 12, 1234)
}

fn kill(time: f64, shard: usize, wal_cut: f64) -> ChaosEvent {
    ChaosEvent {
        time,
        action: ChaosAction::KillReplica {
            replica: shard,
            wal_cut,
        },
    }
}

/// Rebuilds shard `victim`'s durable slice exactly as
/// `run_sharded_episode` does for `seed`: the canonical context rows of
/// its balanced-map range, with a checkpoint at the slice midpoint so
/// the WAL carries the second half.
fn build_victim_slice(
    config: &ShardedConfig,
    seed: u64,
    victim: usize,
) -> (DurableLayerSet, Vec<usize>, turbo_tensor::Matrix) {
    let context = TensorRng::new(seed ^ 0x5A8D_11E7).normal(
        config.context_tokens,
        config.dim,
        0.0,
        1.0,
    );
    let map = ShardMap::balanced(config.shards, config.context_tokens);
    let slice: Vec<usize> = map
        .assignments
        .iter()
        .filter(|r| r.shard == victim)
        .flat_map(|r| r.start..r.end())
        .collect();
    let cells = config.layers * config.heads;
    let mut durable = DurableLayerSet::new(
        config.layers,
        config.heads,
        config.dim,
        config.cache,
        Box::new(RecordBudget { max_records: 4096 }),
    );
    let half = slice.len() / 2;
    for (i, &t) in slice.iter().enumerate() {
        if i == half {
            durable.checkpoint(None);
        }
        let row = context.row(t);
        let rows: Vec<&[f32]> = vec![row; cells];
        durable.try_append_token(&rows, &rows, None).unwrap();
    }
    (durable, slice, context)
}

/// Serialized-state equality across every (layer, head) cell.
fn assert_sets_identical(a: &DurableLayerSet, b: &DurableLayerSet, what: &str) {
    assert_eq!(a.tokens(), b.tokens(), "{what}: token counts diverge");
    for l in 0..a.num_layers() {
        for h in 0..a.heads_per_layer() {
            assert_eq!(
                a.layer(l).head(h).to_bytes(),
                b.layer(l).head(h).to_bytes(),
                "{what}: layer {l} head {h} not bit-identical"
            );
        }
    }
}

#[test]
fn every_victim_wal_cut_recovers_a_bit_identical_prefix() {
    let seed = 0xA11CE;
    for shards in [2usize, 4, 8] {
        let config = cfg(shards, 256);
        let (victim, slice, context) = build_victim_slice(&config, seed, 0);
        let cells = config.layers * config.heads;
        let (snap, wal) = victim.durable_state();
        let boundaries = LayerWriteAheadLog::record_boundaries(&wal);
        assert!(
            boundaries.len() > slice.len() / 4,
            "{shards}-shard slice must push real records through the WAL"
        );

        // Reference advanced in lockstep with the recovered prefix; the
        // midpoint checkpoint is replayed at the same token so flush
        // cadence matches the victim's bit for bit.
        let half = slice.len() / 2;
        let mut reference = DurableLayerSet::new(
            config.layers,
            config.heads,
            config.dim,
            config.cache,
            Box::new(RecordBudget { max_records: 4096 }),
        );
        let mut ref_tokens = 0usize;
        let advance_to = |n: usize, reference: &mut DurableLayerSet, from: usize| {
            for (i, &t) in slice.iter().enumerate().take(n).skip(from) {
                if i == half {
                    reference.checkpoint(None);
                }
                let row = context.row(t);
                let rows: Vec<&[f32]> = vec![row; cells];
                reference.try_append_token(&rows, &rows, None).unwrap();
            }
        };

        let mut last_tokens = 0usize;
        let mut cuts: Vec<usize> = Vec::new();
        for (i, &b) in boundaries.iter().enumerate() {
            cuts.push(b);
            // Torn cuts inside the next record must fall back to this
            // boundary's prefix.
            if i + 1 < boundaries.len() {
                let next = boundaries[i + 1];
                for j in 1..=3usize {
                    let cut = b + j * (next - b) / 4;
                    if cut > b && cut < next {
                        cuts.push(cut);
                    }
                }
            }
        }
        for cut in cuts {
            let (back, outcome) = DurableLayerSet::recover_or_empty(
                config.layers,
                config.heads,
                config.dim,
                config.cache,
                Box::new(RecordBudget { max_records: 4096 }),
                &snap,
                &wal[..cut],
                None,
            );
            assert!(
                outcome.tokens >= last_tokens,
                "{shards}-shard: recovery regressed at cut {cut}"
            );
            assert!(outcome.tokens <= slice.len());
            last_tokens = outcome.tokens;
            advance_to(outcome.tokens, &mut reference, ref_tokens);
            ref_tokens = outcome.tokens;
            assert_sets_identical(
                &back,
                &reference,
                &format!("{shards}-shard cut {cut}"),
            );
        }
        // The clean full log recovers everything.
        let (full, outcome) = DurableLayerSet::recover_or_empty(
            config.layers,
            config.heads,
            config.dim,
            config.cache,
            Box::new(RecordBudget { max_records: 4096 }),
            &snap,
            &wal,
            None,
        );
        assert_eq!(outcome.tokens, slice.len());
        assert_sets_identical(&full, &victim, &format!("{shards}-shard full log"));
    }
}

#[test]
fn episode_reshards_losslessly_at_every_record_boundary_cut() {
    let (gpu, geom) = setup();
    let seed = 0xBEEF;
    let config = cfg(4, 128);
    let reqs = workload();
    let clean = run_sharded_episode(&gpu, &geom, method(), &reqs, &[], &config, seed, None);

    // Derive exact byte cuts from the victim's actual WAL framing, then
    // express each as the fraction the chaos action carries.
    let (victim, _, _) = build_victim_slice(&config, seed, 1);
    let (_, wal) = victim.durable_state();
    let len = wal.len() as f64;
    let boundaries = LayerWriteAheadLog::record_boundaries(&wal);
    let mut cuts: Vec<f64> = Vec::new();
    for (i, &b) in boundaries.iter().enumerate() {
        cuts.push((b as f64 + 0.5) / len); // lands exactly on the boundary
        if i + 1 < boundaries.len() {
            let mid = b + (boundaries[i + 1] - b) / 2;
            if mid > b {
                cuts.push((mid as f64) / len); // torn mid-record
            }
        }
    }
    cuts.push(0.0);
    cuts.push(1.0);

    let victim_tokens = config.context_tokens / config.shards;
    for cut in cuts {
        let stats = run_sharded_episode(
            &gpu,
            &geom,
            method(),
            &reqs,
            &[kill(1.0, 1, cut)],
            &config,
            seed,
            None,
        );
        assert_eq!(stats.shard_kills, 1, "cut {cut}");
        assert_eq!(stats.lost_tokens, 0, "cut {cut}: tokens lost");
        assert_eq!(stats.accounted(), stats.total, "cut {cut}: ledger broken");
        assert_eq!(
            stats.migrated_tokens + stats.reprefilled_tokens,
            victim_tokens,
            "cut {cut}: victim range not fully redistributed"
        );
        assert_eq!(
            stats.context_crc, clean.context_crc,
            "cut {cut}: context fingerprint diverged from the no-fault run"
        );
        assert_eq!(stats.map_epoch, 1, "cut {cut}");
        stats.map.validate(config.shards).unwrap();
    }
}

#[test]
fn layouts_2_4_8_survive_kills_with_identical_fingerprints() {
    let (gpu, geom) = setup();
    let reqs = workload();
    for shards in [2usize, 4, 8] {
        let config = cfg(shards, 256);
        let clean = run_sharded_episode(&gpu, &geom, method(), &reqs, &[], &config, 5, None);
        for cut in [0.0, 0.3, 0.6, 0.9, 1.0] {
            let stats = run_sharded_episode(
                &gpu,
                &geom,
                method(),
                &reqs,
                &[kill(0.8, shards - 1, cut)],
                &config,
                5,
                None,
            );
            assert_eq!(stats.lost_tokens, 0, "{shards}-shard cut {cut}");
            assert_eq!(stats.accounted(), stats.total, "{shards}-shard cut {cut}");
            assert_eq!(
                stats.context_crc, clean.context_crc,
                "{shards}-shard cut {cut}"
            );
            assert_eq!(
                stats.per_shard_tokens.iter().sum::<usize>(),
                config.context_tokens,
                "{shards}-shard cut {cut}"
            );
        }
    }
}

fn episodes() -> usize {
    std::env::var("TURBO_RESHARD_EPISODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24)
}

#[test]
fn seeded_chaos_soak_with_degraded_zones() {
    let (gpu, geom) = setup();
    let config = cfg(4, 256);
    let chaos_cfg = ChaosConfig {
        replicas: config.shards,
        horizon: 12.0,
        kills: 1,
        restarts: 1,
        wal_truncations: 1,
        faults: 0,
        pressure_spikes: 1,
        zones: config.zones,
        degraded_zones: 1,
        degrade_duration: 2.0,
        ..ChaosConfig::default()
    };
    let reqs = workload();
    let clean = run_sharded_episode(&gpu, &geom, method(), &reqs, &[], &config, 99, None);
    for ep in 0..episodes() {
        let seed = 0x50AC ^ (ep as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let plan = ChaosPlan::generate(seed, &chaos_cfg);
        let health = HealthStats::new();
        let stats = run_sharded_episode(
            &gpu,
            &geom,
            method(),
            &reqs,
            &plan.events,
            &config,
            99,
            Some(&health),
        );
        assert_eq!(stats.accounted(), stats.total, "episode {ep}");
        assert_eq!(stats.lost_tokens, 0, "episode {ep}");
        assert_eq!(stats.context_crc, clean.context_crc, "episode {ep}");
        assert_eq!(
            stats.per_shard_tokens.iter().sum::<usize>(),
            config.context_tokens,
            "episode {ep}"
        );
        assert_eq!(
            health.count(HealthEvent::ShardResharded),
            stats.reshards as u64,
            "episode {ep}"
        );
        assert_eq!(stats.map_epoch, stats.reshards as u64, "episode {ep}");
        // Degraded zones never kill and never open breakers.
        assert_eq!(
            health.count(HealthEvent::ZoneDegraded),
            stats.degraded_windows as u64,
            "episode {ep}"
        );
        // Every 8th episode: the whole ShardedStats (trace included)
        // must be bit-identical across worker counts.
        if ep % 8 == 0 {
            let rt = Runtime::with_workers(2);
            let again = run_sharded_episode_on(
                &rt,
                &gpu,
                &geom,
                method(),
                &reqs,
                &plan.events,
                &config,
                99,
                None,
            );
            let base = run_sharded_episode(
                &gpu, &geom, method(), &reqs, &plan.events, &config, 99, None,
            );
            assert_eq!(base, again, "episode {ep}: workers diverge");
        }
    }
}

fn acceptance_tokens() -> usize {
    std::env::var("TURBO_SHARD_TOKENS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(131_072)
}

#[test]
fn long_context_acceptance_kill_plus_degraded_burst_at_1_2_8_workers() {
    let (gpu, geom) = setup();
    let tokens = acceptance_tokens();
    let config = ShardedConfig {
        shards: 4,
        context_tokens: tokens,
        ..ShardedConfig::default()
    };
    let reqs = uniform_workload(6, 1.5, 256, 16, 77);
    // A degraded-zone burst rots zone 1's WALs and inflates its
    // latency, then the kill lands on a zone-1 shard mid-episode: the
    // re-shard must absorb the compounded tear.
    let chaos = [
        ChaosEvent {
            time: 0.5,
            action: ChaosAction::DegradeZone {
                zone: 1,
                latency_factor: 4.0,
                wal_rot: 0.7,
                duration: 3.0,
            },
        },
        kill(1.5, 1, 0.9),
    ];

    let clean = run_sharded_episode(&gpu, &geom, method(), &reqs, &[], &config, 31, None);
    let runs: Vec<ShardedStats> = [1usize, 2, 8]
        .iter()
        .map(|&w| {
            let rt = Runtime::with_workers(w);
            run_sharded_episode_on(
                &rt, &gpu, &geom, method(), &reqs, &chaos, &config, 31, None,
            )
        })
        .collect();

    for (i, stats) in runs.iter().enumerate() {
        assert_eq!(stats.shard_kills, 1, "run {i}");
        assert_eq!(stats.reshards, 1, "run {i}");
        assert_eq!(stats.degraded_windows, 1, "run {i}");
        assert_eq!(stats.lost_tokens, 0, "run {i}: tokens lost");
        assert_eq!(stats.accounted(), stats.total, "run {i}: ledger broken");
        assert_eq!(
            stats.migrated_tokens + stats.reprefilled_tokens,
            tokens / 4,
            "run {i}: victim range not redistributed"
        );
        assert!(
            stats.migrated_tokens > 0,
            "run {i}: the torn WAL must still recover a prefix"
        );
        assert_eq!(
            stats.context_crc, clean.context_crc,
            "run {i}: faulted episode diverged from the no-fault twin"
        );
        assert_eq!(
            stats.per_shard_tokens.iter().sum::<usize>(),
            tokens,
            "run {i}"
        );
    }
    assert_eq!(runs[0], runs[1], "1 vs 2 workers diverge");
    assert_eq!(runs[0], runs[2], "1 vs 8 workers diverge");
    assert_eq!(runs[0].trace, runs[2].trace, "traces must be bit-identical");
}
