//! Property and chaos coverage for the continuous-batching scheduler
//! (`gpusim::sched`) — the serving front end every robust path now runs
//! on.
//!
//! * **Budget invariants** — across seeded episodes with randomized
//!   budgets, every engine step respects the per-step prefill-token
//!   budget, the reserved total-token budget, and the batch-size cap.
//! * **Exact deadline sheds** — the ledger always balances, every
//!   deadline event is mirrored in `HealthStats`, and truncations only
//!   happen past the deadline.
//! * **Worker-count bit-identity** — full `SchedulerStats` (per-step
//!   records included) are identical at 1/2/8 runtime workers.
//! * **Chaos through the new path** — replica kills with WAL tears and
//!   rebuilds run on scheduler-backed serving with tight budgets, and
//!   the exactly-once / zero-token-loss contracts still hold, bit-
//!   identically across worker counts.
//! * **Scale** — thousands of concurrent sequences through one
//!   scheduler, the regime the TurboAttention throughput claims target.

use turbo_gpusim::{
    run_replica_set, run_replica_set_on, simulate_serving_continuous,
    simulate_serving_continuous_on, AttnMethod, GpuSpec, ModelGeometry, ReplicaSetConfig,
    SchedulerConfig, ServingPolicy, WorkloadSpec,
};
use turbo_robust::{ChaosConfig, ChaosPlan, HealthEvent, HealthStats};

fn setup() -> (GpuSpec, ModelGeometry) {
    (GpuSpec::a100_80gb(), ModelGeometry::phi3_medium())
}

/// Derives a scheduler config + workload + policy from one seed, varying
/// every budget the property suite must exercise.
fn episode(seed: u64) -> (SchedulerConfig, ServingPolicy, Vec<turbo_gpusim::RequestSpec>) {
    let chunk = 64 << (seed % 4); // 64..512
    let cfg = SchedulerConfig {
        prefill_chunk: chunk,
        max_batch_prefill_tokens: chunk * (1 + (seed % 5) as usize),
        max_batch_total_tokens: if seed.is_multiple_of(3) {
            usize::MAX
        } else {
            4096 + (seed % 7) as usize * 2048
        },
        max_waiting_tokens: (seed % 6) as usize,
        waiting_served_ratio: 0.5 + (seed % 8) as f64 * 0.25,
        max_batch_size: 4 + (seed % 29) as usize,
    };
    let policy = ServingPolicy {
        deadline: if seed.is_multiple_of(2) { f64::INFINITY } else { 4.0 },
        sched: cfg,
        ..ServingPolicy::default()
    };
    let reqs = WorkloadSpec {
        n: 12 + (seed % 21) as usize,
        rate: 2.0 + (seed % 9) as f64,
        prompt: 128 + (seed % 4) as usize * 512,
        gen: 8 + (seed % 48) as usize,
        seed,
    }
    .requests();
    (cfg, policy, reqs)
}

#[test]
fn budgets_hold_on_every_step_across_seeded_episodes() {
    let (gpu, geom) = setup();
    for ep in 0..24u64 {
        let seed = 0xBA7C_4000 + ep;
        let (cfg, policy, reqs) = episode(seed);
        let health = HealthStats::new();
        let stats = simulate_serving_continuous(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 4.0 },
            &reqs,
            &policy,
            Some(&health),
        );
        let s = &stats.serving;
        assert_eq!(
            s.completed + s.truncated + s.rejected,
            reqs.len(),
            "seed {seed}: ledger must balance"
        );
        for step in &stats.steps {
            assert!(
                step.prefill_tokens <= cfg.max_batch_prefill_tokens,
                "seed {seed} step {}: prefill {} over budget {}",
                step.index,
                step.prefill_tokens,
                cfg.max_batch_prefill_tokens
            );
            assert!(
                step.reserved_tokens <= cfg.max_batch_total_tokens,
                "seed {seed} step {}: reserved {} over budget {}",
                step.index,
                step.reserved_tokens,
                cfg.max_batch_total_tokens
            );
            assert!(
                step.batch <= cfg.max_batch_size,
                "seed {seed} step {}: batch {} over cap {}",
                step.index,
                step.batch,
                cfg.max_batch_size
            );
            assert!(step.duration > 0.0, "steps always advance time");
        }
        assert!(stats.peak_step_prefill_tokens <= cfg.max_batch_prefill_tokens);
        assert_eq!(stats.streamed_tokens, s.generated_tokens);
        // Deadline sheds are exact: every miss is a health event, and the
        // two agree to the count.
        assert_eq!(
            health.count(HealthEvent::DeadlineMiss),
            s.deadline_misses as u64,
            "seed {seed}: health/ledger deadline mismatch"
        );
        // Determinism: the same episode replays bit-identically.
        let again = simulate_serving_continuous(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 4.0 },
            &reqs,
            &policy,
            None,
        );
        assert_eq!(stats, again, "seed {seed}: episode must replay exactly");
    }
}

#[test]
fn scheduler_stats_bit_identical_across_1_2_8_workers() {
    let (gpu, geom) = setup();
    for ep in 0..6u64 {
        let seed = 0x5EED_0100 + ep * 7;
        let (_, policy, reqs) = episode(seed);
        let serial = simulate_serving_continuous(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &policy,
            None,
        );
        for workers in [1usize, 2, 8] {
            let rt = turbo_runtime::Runtime::with_workers(workers);
            let pooled = simulate_serving_continuous_on(
                &rt,
                &gpu,
                &geom,
                AttnMethod::FlashFp16,
                &reqs,
                &policy,
                None,
            );
            assert_eq!(
                serial, pooled,
                "seed {seed}: {workers}-worker stats diverged"
            );
        }
    }
}

#[test]
fn chaos_kill_and_wal_rebuild_run_through_the_scheduler_path() {
    let (gpu, geom) = setup();
    // Tight scheduler budgets so the chaos episode genuinely exercises
    // chunked prefill + budgeted admission, not an effectively-unbounded
    // batch.
    let policy = ServingPolicy {
        sched: SchedulerConfig {
            prefill_chunk: 128,
            max_batch_prefill_tokens: 256,
            max_batch_total_tokens: 8192,
            max_batch_size: 6,
            ..SchedulerConfig::default()
        },
        ..ServingPolicy::default()
    };
    let rs_cfg = ReplicaSetConfig {
        prefix_tokens: 64,
        prefix_dim: 4,
        policy,
        ..ReplicaSetConfig::default()
    };
    let chaos_cfg = ChaosConfig {
        replicas: 2,
        horizon: 20.0,
        ..ChaosConfig::default()
    };
    let mut kills_seen = 0usize;
    for ep in 0..8u64 {
        let seed = 0xC0B4_7001 + ep * 131;
        let plan = ChaosPlan::generate(seed, &chaos_cfg);
        let reqs = WorkloadSpec {
            n: 10,
            rate: 2.0,
            prompt: 512,
            gen: 16,
            seed,
        }
        .requests();
        let health = HealthStats::new();
        let stats = run_replica_set(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &plan.events,
            &rs_cfg,
            seed,
            Some(&health),
        );
        // Exactly-once accounting survives the scheduler swap.
        assert_eq!(stats.accounted(), stats.total, "seed {seed}");
        assert_eq!(stats.total, reqs.len());
        // Zero token loss: every killed prefix is replayed or re-prefilled.
        assert_eq!(stats.lost_tokens, 0, "seed {seed}");
        assert_eq!(
            stats.kills * rs_cfg.prefix_tokens,
            stats.recovered_tokens + stats.reprefilled_tokens,
            "seed {seed}: durability ledger"
        );
        assert_eq!(stats.rebuilds, stats.kills, "every kill rebuilds");
        kills_seen += stats.kills;
        // Bit-identical across worker counts on the new path.
        for workers in [1usize, 2, 8] {
            let rt = turbo_runtime::Runtime::with_workers(workers);
            let pooled = run_replica_set_on(
                &rt,
                &gpu,
                &geom,
                AttnMethod::FlashFp16,
                &reqs,
                &plan.events,
                &rs_cfg,
                seed,
                None,
            );
            assert_eq!(stats, pooled, "seed {seed}: {workers} workers diverged");
        }
    }
    assert!(kills_seen > 0, "chaos plans must include kills to test rebuild");
}

#[test]
fn thousands_of_concurrent_sequences_through_one_scheduler() {
    let (gpu, geom) = setup();
    // 2048 short sequences arriving near-simultaneously. At 3-bit
    // resident KV the full 2048 × (32+12)-token reservation fits the
    // device, so the scheduler can hold the entire cohort in flight —
    // the regime the paper's throughput claims target.
    let reqs = WorkloadSpec {
        n: 2048,
        rate: 200_000.0,
        prompt: 32,
        gen: 12,
        seed: 0x7007,
    }
    .requests();
    let policy = ServingPolicy {
        sched: SchedulerConfig {
            prefill_chunk: 32,
            max_batch_prefill_tokens: 8192,
            max_batch_size: 4096,
            ..SchedulerConfig::default()
        },
        ..ServingPolicy::default()
    };
    let stats = simulate_serving_continuous(
        &gpu,
        &geom,
        AttnMethod::Turbo { kv_bits: 3.0 },
        &reqs,
        &policy,
        None,
    );
    assert_eq!(stats.serving.completed, reqs.len(), "everything completes");
    assert!(
        stats.serving.peak_batch >= 1000,
        "peak concurrency {} must reach four digits",
        stats.serving.peak_batch
    );
    assert_eq!(
        stats.serving.generated_tokens,
        reqs.len() * 12,
        "12 tokens per sequence, exactly"
    );
    // The cohort was genuinely batched, not trickled: far fewer engine
    // steps than sequences.
    assert!(
        stats.steps.len() < reqs.len() / 4,
        "{} steps for {} sequences is serialized, not batched",
        stats.steps.len(),
        reqs.len()
    );
}
