//! Fault-injection suite: under every fault class the deterministic
//! injector can produce — bit flips in packed codes, byte corruption and
//! truncation of persisted payloads, NaN/Inf in activations, HBM
//! pressure — the stack must *detect* the fault, *degrade* (drop a page,
//! salvage a prefix, promote a precision rung, demote a bit width) and
//! *account* for it in [`HealthStats`], never panic.

use turbo_attention::robust::{PrecisionLevel, RobustAttention};
use turbo_attention::TurboConfig;
use turbo_gpusim::{
    simulate_serving_robust, uniform_workload, AttnMethod, GpuSpec, ModelGeometry, ServingPolicy,
};
use turbo_kvcache::persist::{deserialize_head_cache, serialize_head_cache};
use turbo_kvcache::{
    recover_head_cache, serialize_head_cache_v1, HeadKvCache, KvCacheConfig, PagedKvPool,
};
use turbo_quant::BitWidth;
use turbo_robust::{FaultInjector, HealthEvent, HealthStats};
use turbo_tensor::TensorRng;

fn cache_config() -> KvCacheConfig {
    KvCacheConfig {
        bits: BitWidth::Int4,
        group_size: 16,
        buffer_capacity: 16,
    }
}

fn filled_head_cache(seed: u64, tokens: usize, d: usize) -> HeadKvCache {
    let mut rng = TensorRng::new(seed);
    let mut cache = HeadKvCache::new(d, cache_config());
    let data = rng.normal(tokens, d, 0.0, 1.0);
    for t in 0..tokens {
        cache.append(data.row(t), data.row(t));
    }
    cache
}

#[test]
fn bit_flips_in_paged_pool_are_detected_dropped_and_counted() {
    let mut rng = TensorRng::new(0xFA01);
    let mut inj = FaultInjector::new(0xFA02);
    let mut pool = PagedKvPool::new(8, cache_config());
    let health = HealthStats::new();

    // Three sequences, enough tokens to seal several pages each.
    let seqs: Vec<_> = (0..3).map(|_| pool.create_sequence()).collect();
    let data = rng.normal(50, 8, 0.0, 1.0);
    for &s in &seqs {
        for t in 0..50 {
            pool.append(s, data.row(t), data.row(t));
        }
    }

    // Flip one bit in a sealed page of sequence 1.
    pool.tamper_page(seqs[1], 1, |k, _v| {
        inj.flip_bit(k);
    })
    .unwrap();

    let report = pool.scrub(Some(&health));
    assert_eq!(report.corrupt_pages, 1, "exactly the tampered page");
    assert_eq!(health.count(HealthEvent::DroppedPage), 1);
    assert_eq!(health.count(HealthEvent::PartialRecovery), 1);
    // The re-prefill range starts at the corrupt page (tokens 16..) and
    // runs to the old sequence end.
    assert_eq!(report.reprefill, vec![(seqs[1].raw(), 16..50)]);
    // Unaffected sequences still serve their full range.
    let (k0, _) = pool.dequantize_sequence(seqs[0]);
    assert_eq!(k0.rows(), 50);
    assert_eq!(pool.seq_len(seqs[1]), 16);
    // A second scrub finds nothing: the fault was fully repaired.
    assert!(pool.scrub(Some(&health)).is_clean());
}

#[test]
fn every_scrubbed_fault_count_matches_the_injection_count() {
    let mut inj = FaultInjector::new(0xFA03);
    let mut rng = TensorRng::new(0xFA04);
    let mut pool = PagedKvPool::new(4, cache_config());
    let health = HealthStats::new();
    let s = pool.create_sequence();
    let data = rng.normal(16 * 6, 4, 0.0, 1.0);
    for t in 0..16 * 6 {
        pool.append(s, data.row(t), data.row(t));
    }
    // Tamper a deterministic-random subset of the sealed pages.
    let tampered = [1usize, 3, 4];
    for &p in &tampered {
        pool.tamper_page(s, p, |k, v| {
            inj.flip_bit(k);
            inj.flip_bit(v);
        })
        .unwrap();
    }
    let report = pool.scrub(Some(&health));
    assert_eq!(report.corrupt_pages, tampered.len());
    assert_eq!(
        health.count(HealthEvent::DroppedPage),
        tampered.len() as u64
    );
    // Truncation happens at the FIRST corrupt page.
    assert_eq!(pool.seq_len(s), 16);
}

#[test]
fn persisted_payload_bit_flips_fail_closed_and_recover_a_prefix() {
    let cache = filled_head_cache(0xFA05, 70, 8);
    let clean = serialize_head_cache(&cache);
    let mut inj = FaultInjector::new(0xFA06);
    let health = HealthStats::new();

    let mut detected = 0usize;
    let mut recovered_tokens = 0usize;
    for round in 0..32 {
        let mut payload = clean.clone();
        // Corrupt 1-4 bytes past the header.
        let n_faults = 1 + inj.pick(4);
        let start = 16 + inj.pick(payload.len() - 32);
        let faults = inj.corrupt_bytes(&mut payload[start..], n_faults);
        assert!(!faults.is_empty());
        match deserialize_head_cache(&payload) {
            Ok(c) => {
                // A mutation can land in dead space (e.g. padding of a
                // length field's upper bytes is still covered by CRC, so
                // this is rare) — but if it decodes, it must be coherent.
                assert_eq!(c.head_dim(), 8);
            }
            Err(_) => detected += 1,
        }
        // Recovery must never panic and always yield a valid cache or a
        // clean error.
        if let Ok((salvaged, report)) = recover_head_cache(&payload, Some(&health)) {
            assert!(salvaged.len() <= cache.len());
            assert_eq!(salvaged.len(), report.valid_tokens);
            recovered_tokens += report.valid_tokens;
            if !report.complete {
                assert!(report.dropped_blocks > 0 || salvaged.buffer_len() == 0);
            }
        }
        let _ = round;
    }
    assert!(
        detected >= 28,
        "checksums should catch nearly all corruptions, caught {detected}/32"
    );
    assert!(recovered_tokens > 0, "some prefixes must be salvageable");
    assert!(health.count(HealthEvent::PartialRecovery) > 0);
}

#[test]
fn truncated_payloads_salvage_whole_blocks_without_panicking() {
    let cache = filled_head_cache(0xFA07, 64, 4);
    let clean = serialize_head_cache(&cache);
    let mut inj = FaultInjector::new(0xFA08);
    let health = HealthStats::new();
    for _ in 0..64 {
        let mut payload = clean.clone();
        inj.truncate_bytes(&mut payload).unwrap();
        assert!(
            deserialize_head_cache(&payload).is_err(),
            "strict decode must reject truncation"
        );
        if let Ok((salvaged, report)) = recover_head_cache(&payload, Some(&health)) {
            // Only whole 16-token blocks survive truncation recovery.
            assert_eq!(salvaged.len() % 16, 0);
            assert!(report.valid_tokens <= 64);
        }
    }
}

#[test]
fn v1_payloads_without_checksums_still_round_trip() {
    let cache = filled_head_cache(0xFA09, 40, 8);
    let v1 = serialize_head_cache_v1(&cache);
    let back = deserialize_head_cache(&v1).expect("v1 must stay readable");
    assert_eq!(back.len(), cache.len());
    let (k_old, v_old) = cache.dequantize_all();
    let (k_new, v_new) = back.dequantize_all();
    assert_eq!(k_old, k_new);
    assert_eq!(v_old, v_new);
    // And the recovery path treats a clean v1 payload as complete.
    let (_, report) = recover_head_cache(&v1, None).unwrap();
    assert!(report.complete);
    assert_eq!(report.valid_tokens, 40);
}

#[test]
fn nan_and_inf_activations_degrade_gracefully_with_exact_accounting() {
    let robust = RobustAttention::new(TurboConfig::default());
    let mut rng = TensorRng::new(0xFA0A);
    let mut inj = FaultInjector::new(0xFA0B);
    let mut cache = robust.new_cache(16);
    let mut injected = 0u64;
    for t in 0..48 {
        let mut q = rng.normal(1, 16, 0.0, 1.0);
        let mut k = rng.normal(1, 16, 0.0, 1.0);
        let mut v = rng.normal(1, 16, 0.0, 1.0);
        // Poison a rotating subset of the inputs.
        if t % 4 == 1 {
            let n = 1 + inj.pick(3);
            injected += inj.inject_non_finite(&mut q, n).indices.len() as u64;
        }
        if t % 4 == 2 {
            let n = 1 + inj.pick(3);
            injected += inj.inject_non_finite(&mut k, n).indices.len() as u64;
        }
        if t % 4 == 3 {
            let n = 1 + inj.pick(3);
            injected += inj.inject_non_finite(&mut v, n).indices.len() as u64;
        }
        let out = robust
            .try_decode(q.row(0), k.row(0), v.row(0), &mut cache)
            .expect("decode must survive poisoned activations");
        assert!(out.iter().all(|x| x.is_finite()), "step {t}");
    }
    assert_eq!(cache.len(), 48, "every token must be cached");
    assert_eq!(
        robust.health().count(HealthEvent::NonFiniteInput),
        injected,
        "health must count exactly the injected elements"
    );
}

#[test]
fn oversized_activations_climb_the_ladder_not_the_stack() {
    let robust = RobustAttention::new(TurboConfig::default());
    let mut rng = TensorRng::new(0xFA0C);
    let q = rng.normal(16, 8, 0.0, 1.0);
    let mut k = rng.normal(16, 8, 0.0, 1.0);
    k.set(7, 3, f32::MAX / 8.0); // quantizer-lethal outlier
    let v = rng.normal(16, 8, 0.0, 1.0);
    let mut cache = robust.new_cache(8);
    let out = robust.try_prefill(&q, &k, &v, &mut cache).unwrap();
    assert!(out.as_slice().iter().all(|x| x.is_finite()));
    assert_eq!(cache.level(), PrecisionLevel::Fp16);
    assert_eq!(robust.health().count(HealthEvent::ScaleOverflow), 1);
    assert!(robust.health().count(HealthEvent::PrecisionPromotion) >= 1);
}

#[test]
fn hbm_pressure_is_survived_by_demotion_or_rejection_never_panic() {
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let mut inj = FaultInjector::new(0xFA0D);
    let reqs = uniform_workload(8, 5.0, 4096, 16, 0xFA0E);
    let health = HealthStats::new();
    for _ in 0..4 {
        let fraction = inj.hbm_pressure(0.35, 0.9);
        let policy = ServingPolicy {
            deadline: 120.0,
            degrade_bits: Some(2.0),
            hbm_usable_fraction: fraction,
            max_admission_retries: 8,
            ..ServingPolicy::default()
        };
        let stats = simulate_serving_robust(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 4.0 },
            &reqs,
            &policy,
            Some(&health),
        );
        // Conservation: every request is accounted for exactly once.
        assert_eq!(
            stats.completed + stats.truncated + stats.rejected,
            reqs.len(),
            "at pressure {fraction}"
        );
        assert_eq!(health.count(HealthEvent::PressureDemotion), stats.demotions);
        assert!(stats.demotions <= 1, "demotion is a one-way global switch");
        health.reset();
    }
}

#[test]
fn health_registry_aggregates_across_subsystems() {
    // One shared registry can absorb counters from independent layers.
    let pool_health = HealthStats::new();
    let attn_health = HealthStats::new();
    pool_health.record_n(HealthEvent::DroppedPage, 2);
    attn_health.record(HealthEvent::NonFiniteInput);
    attn_health.record(HealthEvent::PrecisionFallback);
    let global = HealthStats::new();
    global.absorb(&pool_health);
    global.absorb(&attn_health);
    assert_eq!(global.total(), 4);
    assert_eq!(global.count(HealthEvent::DroppedPage), 2);
    assert!(!global.is_clean());
    let report = global.report();
    assert!(report.iter().any(|&(name, n)| name == "dropped_page" && n == 2));
}
