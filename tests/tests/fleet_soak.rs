//! Deterministic fleet soak: seeded control-plane episodes with
//! correlated-failure bursts and bounded SLO recovery.
//!
//! Every episode runs a full fleet control loop — diurnal/bursty
//! workload, SLO tracker, AIMD tuner, SLO-driven autoscaler — through a
//! chaos campaign whose burst epochs fire *correlated* failures
//! (simultaneous multi-replica kills, pressure storms). Each episode
//! asserts the fleet contract:
//!
//! * **exactly-once accounting** — `completed + truncated + rejected`
//!   equals the number of submitted requests, per epoch and in total;
//! * **zero token loss** — every durable prefix token of every killed
//!   replica (chaos kills *and* cold spawn warm-ups) is recovered by
//!   WAL replay or re-prefilled;
//! * **bounded SLO recovery** — after every correlated burst, the
//!   violation rate returns under the SLO budget within the configured
//!   number of epochs;
//! * **determinism** — the same seed reproduces the identical
//!   [`FleetStats`] (event trace included) on 1, 2, and 8 runtime
//!   workers, bit for bit.
//!
//! The episode count defaults to 200 and can be overridden with the
//! `TURBO_FLEET_EPISODES` environment variable (CI runs a bounded smoke;
//! soak rigs can turn it up).

use turbo_gpusim::{
    fleet::{FleetConfig, FleetWorkloadSpec},
    run_fleet_on, AttnMethod, GpuSpec, ModelGeometry, ReplicaSetConfig,
};
use turbo_robust::{ChaosConfig, HealthEvent, HealthStats, SloConfig};
use turbo_runtime::Runtime;

fn episodes() -> usize {
    std::env::var("TURBO_FLEET_EPISODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

/// The soak fleet: three burst epochs per episode (4th, 8th, 12th of
/// 13), recovery required within 2 epochs of each.
fn soak_config() -> FleetConfig {
    FleetConfig {
        epochs: 13,
        burst_every: 4,
        recovery_bound_epochs: 2,
        slo: SloConfig {
            latency_slo: 2.0,
            window: 24,
            max_violation_rate: 0.1,
        },
        workload: FleetWorkloadSpec {
            requests_per_epoch: 12,
            ..FleetWorkloadSpec::default()
        },
        replica_set: ReplicaSetConfig {
            prefix_tokens: 64,
            prefix_dim: 4,
            ..ReplicaSetConfig::default()
        },
        chaos: ChaosConfig {
            horizon: 20.0,
            kills: 0,
            restarts: 0,
            wal_truncations: 0,
            faults: 1,
            pressure_spikes: 0,
            bursts: 1,
            burst_kill_fraction: 0.5,
            pressure_storms: 1,
            ..ChaosConfig::default()
        },
        ..FleetConfig::default()
    }
}

#[test]
fn fleet_soak_holds_slo_recovery_and_ledgers_across_seeded_episodes() {
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let cfg = soak_config();
    let rt = Runtime::with_workers(2);
    let n = episodes();
    assert!(n > 0, "soak needs at least one episode");
    let expected_total = cfg.epochs * cfg.workload.requests_per_epoch;
    let mut total_bursts = 0usize;
    let mut total_kills = 0usize;
    for ep in 0..n {
        let seed = 0xF1EE_7000 + ep as u64;
        let health = HealthStats::new();
        let stats = run_fleet_on(
            &rt,
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &cfg,
            seed,
            Some(&health),
        );

        // Exactly-once: every submitted request lands in exactly one
        // terminal bucket, per epoch and in total.
        assert_eq!(stats.total, expected_total, "episode {ep}");
        assert_eq!(stats.accounted(), stats.total, "episode {ep}: ledger leak");
        for e in &stats.epochs {
            assert_eq!(
                e.completed + e.truncated + e.rejected,
                e.total,
                "episode {ep} epoch {}: ledger leak",
                e.epoch
            );
        }

        // Zero token loss: chaos kills and cold spawn warm-ups both
        // rebuild through snapshot + WAL replay or re-prefill.
        assert_eq!(stats.lost_tokens, 0, "episode {ep}: silent token loss");
        assert_eq!(
            stats.recovered_tokens + stats.reprefilled_tokens,
            stats.kills * cfg.replica_set.prefix_tokens,
            "episode {ep}: durability ledger does not balance"
        );

        // The campaign must actually burst, and every burst must recover
        // within the configured bound.
        assert!(stats.bursts > 0, "episode {ep}: no correlated bursts fired");
        let burst_epochs = stats.epochs.iter().filter(|e| !e.bursts.is_empty()).count();
        assert_eq!(
            stats.recoveries.len(),
            burst_epochs,
            "episode {ep}: every burst epoch needs a recovery record"
        );
        for r in &stats.recoveries {
            assert!(
                r.within_bound,
                "episode {ep}: burst at epoch {} took {} epochs to recover (bound {})",
                r.burst_epoch, r.recovery_epochs, cfg.recovery_bound_epochs
            );
        }

        // Health telemetry agrees with the report.
        assert_eq!(
            health.count(HealthEvent::SloRequestOk) + health.count(HealthEvent::SloViolation),
            stats.total as u64,
            "episode {ep}: SLO tracker must see every request exactly once"
        );
        assert_eq!(
            health.count(HealthEvent::ChaosBurst),
            stats.bursts as u64,
            "episode {ep}"
        );
        assert_eq!(
            health.count(HealthEvent::ReplicaKilled),
            stats.kills as u64,
            "episode {ep}"
        );
        assert!(
            health.count(HealthEvent::FleetScaleUp) >= stats.scale_ups as u64,
            "episode {ep}"
        );
        assert_eq!(
            health.count(HealthEvent::FleetScaleDown),
            stats.scale_downs as u64,
            "episode {ep}"
        );
        assert!(
            health.count(HealthEvent::FleetSloRecovered) as usize <= stats.recoveries.len(),
            "episode {ep}"
        );

        // The tuner must have consumed the closed SLO windows.
        assert_eq!(
            stats.tuner_counters.0,
            stats.slo_windows,
            "episode {ep}: tuner missed windows"
        );
        assert!(
            (0.0..=1.0).contains(&stats.tuner_position),
            "episode {ep}: tuner position out of range"
        );

        total_bursts += stats.bursts;
        total_kills += stats.kills;

        // Sampled determinism: the identical FleetStats — event trace,
        // windows, decisions, ledger — on 1 and 8 workers.
        if ep % 16 == 0 {
            let rt1 = Runtime::with_workers(1);
            let rt8 = Runtime::with_workers(8);
            let s1 = run_fleet_on(&rt1, &gpu, &geom, AttnMethod::FlashFp16, &cfg, seed, None);
            let s8 = run_fleet_on(&rt8, &gpu, &geom, AttnMethod::FlashFp16, &cfg, seed, None);
            assert_eq!(stats, s1, "episode {ep}: 2-worker vs 1-worker diverged");
            assert_eq!(stats, s8, "episode {ep}: 2-worker vs 8-worker diverged");
        }
    }
    assert!(total_bursts > 0, "the soak never fired a correlated burst");
    assert!(total_kills > 0, "the soak never killed a replica");
}

#[test]
fn fleet_trace_is_bit_identical_across_reruns() {
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let cfg = soak_config();
    let rt = Runtime::with_workers(2);
    let a = run_fleet_on(&rt, &gpu, &geom, AttnMethod::FlashFp16, &cfg, 0xF1EE, None);
    let b = run_fleet_on(&rt, &gpu, &geom, AttnMethod::FlashFp16, &cfg, 0xF1EE, None);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a, b);
}
