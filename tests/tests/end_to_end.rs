//! Full-lifecycle integration tests: prefill → decode → cache state,
//! across every crate boundary.

use turbo_attention::{naive_attention, turbo_attend_cache, Masking, TurboAttention, TurboConfig};
use turbo_kvcache::{HeadKvCache, KvCacheConfig};
use turbo_quant::BitWidth;
use turbo_softmax::Sas;
use turbo_tensor::{relative_error, Matrix, TensorRng};

fn qkv(seed: u64, n: usize, d: usize) -> (Matrix, Matrix, Matrix) {
    let mut rng = TensorRng::new(seed);
    (
        rng.normal(n, d, 0.0, 1.0),
        rng.normal(n, d, 0.0, 1.0),
        rng.normal(n, d, 0.0, 1.0),
    )
}

#[test]
fn long_generation_stays_accurate() {
    // Prefill 256 tokens, decode 128 more; every 16th step is checked
    // against dense exact attention over the true (unquantized) history.
    let d = 32;
    let (q0, k0, v0) = qkv(1, 256, d);
    let engine = TurboAttention::new(TurboConfig {
        buffer_capacity: 32,
        ..TurboConfig::default()
    });
    let (_, mut cache) = engine.prefill_head(&q0, &k0, &v0);

    let mut rng = TensorRng::new(2);
    let mut ks = k0;
    let mut vs = v0;
    for step in 0..128 {
        let qt = rng.normal(1, d, 0.0, 1.0);
        let kt = rng.normal(1, d, 0.0, 1.0);
        let vt = rng.normal(1, d, 0.0, 1.0);
        ks.append_rows(&kt);
        vs.append_rows(&vt);
        let out = engine.decode_head(qt.row(0), kt.row(0), vt.row(0), &mut cache);
        assert_eq!(cache.len(), 257 + step);
        if step % 16 == 0 {
            let exact = naive_attention(&qt, &ks, &vs, Masking::Causal);
            let out_m = Matrix::from_vec(1, d, out);
            let rel = relative_error(&out_m, &exact);
            assert!(rel < 0.25, "step {step}: relative error {rel}");
        }
    }
    // Cache structure: 256 prefill + 128 decoded, buffer capacity 32.
    assert_eq!(cache.len(), 384);
    assert_eq!(cache.buffer_len(), 0); // 128 decodes = exactly 4 flushes
}

#[test]
fn prefill_cache_equals_decode_built_cache_closely() {
    // Building the cache via prefill blocks vs appending token-by-token
    // must give comparable reconstructions (scales differ slightly:
    // per-block stage-1 vs buffer universal scale).
    let d = 16;
    let (_, k, v) = qkv(3, 64, d);
    let cfg = KvCacheConfig {
        bits: BitWidth::Int4,
        group_size: 64,
        buffer_capacity: 64,
    };
    let mut prefill_cache = HeadKvCache::new(d, cfg);
    prefill_cache.append_prefill_block(&k, &v);
    let mut decode_cache = HeadKvCache::new(d, cfg);
    for t in 0..64 {
        decode_cache.append(k.row(t), v.row(t));
    }
    decode_cache.flush();
    let (kp, _) = prefill_cache.dequantize_all();
    let (kd, _) = decode_cache.dequantize_all();
    assert!(relative_error(&kp, &k) < 0.12);
    assert!(relative_error(&kd, &k) < 0.2);
}

#[test]
fn attend_cache_is_read_only() {
    let d = 8;
    let (_, k, v) = qkv(4, 32, d);
    let engine = TurboAttention::default();
    let (_, cache) = engine.prefill_head(&k, &k, &v);
    let sas = Sas::paper_default();
    let len_before = cache.len();
    let q = [0.5f32; 8];
    let a = turbo_attend_cache(&q, &cache, &sas);
    let b = turbo_attend_cache(&q, &cache, &sas);
    assert_eq!(a, b, "read-only attend must be deterministic");
    assert_eq!(cache.len(), len_before);
}

#[test]
fn mixed_precision_layer_protects_outlier_heads() {
    // Outlier heads (kept at INT4) must end up with lower attention error
    // than the demoted INT2 heads on comparable data.
    let d = 32;
    let n = 128;
    let mut rng = TensorRng::new(5);
    let qs: Vec<Matrix> = (0..4).map(|_| rng.normal(n, d, 0.0, 1.0)).collect();
    let ks = vec![
        rng.normal_with_channel_outliers(n, d, 1.0, &[2, 9], 20.0),
        rng.normal(n, d, 0.0, 1.0),
        rng.normal_with_channel_outliers(n, d, 1.0, &[5], 20.0),
        rng.normal(n, d, 0.0, 1.0),
    ];
    let vs: Vec<Matrix> = (0..4).map(|_| rng.normal(n, d, 0.0, 1.0)).collect();
    let engine = TurboAttention::default();
    let (_, layer) = engine.prefill_layer_auto(&qs, &ks, &vs, 2);
    assert_eq!(layer.head(0).config().bits, BitWidth::Int4);
    assert_eq!(layer.head(1).config().bits, BitWidth::Int2);
    assert_eq!(layer.head(2).config().bits, BitWidth::Int4);
    assert_eq!(layer.head(3).config().bits, BitWidth::Int2);
    // Reconstruction error per head mirrors the bit assignment.
    let e_int4 = relative_error(&layer.head(1).dequantize_all().1, &vs[1]);
    let e_int2 = relative_error(&layer.head(3).dequantize_all().1, &vs[3]);
    // Heads 1 and 3 hold statistically identical V; both are INT2 so they
    // should be similar — while head 0's INT4 V beats both.
    let e_head0 = relative_error(&layer.head(0).dequantize_all().1, &vs[0]);
    assert!(e_head0 < e_int4.min(e_int2));
}

#[test]
fn compression_ratio_exceeds_paper_claim_at_mixed_precision() {
    // The paper claims >4.4x KV-cache reduction with mixed 2/4-bit.
    let d = 128;
    let n = 1024;
    let mut rng = TensorRng::new(6);
    let k = rng.normal(n, d, 0.0, 1.0);
    let engine = TurboAttention::default();
    let qs: Vec<Matrix> = (0..2).map(|_| rng.normal(n, d, 0.0, 1.0)).collect();
    let ks = vec![k.clone(), rng.normal(n, d, 0.0, 1.0)];
    let vs = vec![k.clone(), k];
    let (_, layer) = engine.prefill_layer(&qs, &ks, &vs, &[BitWidth::Int2, BitWidth::Int4]);
    let ratio = layer.memory_stats().compression_ratio();
    assert!(ratio > 4.4, "compression ratio {ratio}");
}

#[test]
fn sas_threshold_trades_accuracy_for_sparsity() {
    // Tighter thresholds are cheaper (smaller LUT, more zeros) but lose
    // accuracy; the engine must remain monotone across thresholds.
    let (q, k, v) = qkv(7, 96, 16);
    let exact = naive_attention(&q, &k, &v, Masking::Causal);
    let mut errs = Vec::new();
    for nr in [-2i32, -6, -12] {
        let engine = TurboAttention::new(TurboConfig {
            sas_threshold: nr,
            ..TurboConfig::default()
        });
        let (out, _) = engine.prefill_head(&q, &k, &v);
        errs.push(relative_error(&out, &exact));
    }
    assert!(
        errs[0] > errs[1] && errs[1] >= errs[2] * 0.5,
        "threshold errors not ordered: {errs:?}"
    );
}
