//! Property-based invariants spanning the quantization, softmax and
//! attention crates.

use proptest::prelude::*;
use turbo_attention::{flash_attention, naive_attention, Masking};
use turbo_quant::{AsymQuantized, BitWidth, PackedCodes, ProgressiveBlock, SymQuantized};
use turbo_softmax::{softmax, Sas};
use turbo_tensor::{max_abs_error, Matrix, TensorRng};

/// Strategy: a small random matrix described by (rows, cols, seed, scale).
fn matrix_strategy() -> impl Strategy<Value = Matrix> {
    (1usize..24, 1usize..24, any::<u64>(), 0.1f32..8.0)
        .prop_map(|(r, c, seed, scale)| TensorRng::new(seed).normal(r, c, 0.0, scale))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn symmetric_quant_error_is_bounded(m in matrix_strategy()) {
        let q = SymQuantized::quantize(&m);
        let back = q.dequantize();
        prop_assert!(max_abs_error(&m, &back) <= q.scale() * 0.5 + 1e-6);
    }

    #[test]
    fn progressive_round_trip_bounded_by_step(
        m in matrix_strategy(),
        bits in prop_oneof![Just(BitWidth::Int2), Just(BitWidth::Int4)],
        group in 1usize..32,
    ) {
        let pq = ProgressiveBlock::quantize(&m, bits, group);
        let back = pq.dequantize();
        // Worst case: stage-1 half step + stage-2 scale (≤ range/levels
        // with round-off and clamp slack).
        let stage2_step = 256.0 / (bits.levels() - 1) as f32;
        let bound = pq.outer_scale() * (0.5 + 2.0 * stage2_step);
        prop_assert!(max_abs_error(&m, &back) <= bound,
            "error {} > bound {bound}", max_abs_error(&m, &back));
    }

    #[test]
    fn packing_round_trips(codes in proptest::collection::vec(0u8..4, 0..200)) {
        let p = PackedCodes::pack(&codes, BitWidth::Int2);
        prop_assert_eq!(p.unpack(), codes);
    }

    #[test]
    fn asymmetric_quant_error_bounded(
        xs in proptest::collection::vec(-100.0f32..100.0, 1..128),
        bits in prop_oneof![Just(BitWidth::Int2), Just(BitWidth::Int3), Just(BitWidth::Int4), Just(BitWidth::Int8)],
    ) {
        let q = AsymQuantized::quantize(&xs, bits);
        let back = q.dequantize();
        for (x, y) in xs.iter().zip(&back) {
            prop_assert!((x - y).abs() <= q.half_step() + 1e-4);
        }
    }

    #[test]
    fn softmax_outputs_are_distributions(m in matrix_strategy()) {
        let p = softmax(&m);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
        }
    }

    #[test]
    fn sas_softmax_outputs_are_distributions(m in matrix_strategy()) {
        let p = Sas::paper_default().softmax(&m);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn sas_exp_never_exceeds_small_bound(x in -100.0f32..0.0) {
        let sas = Sas::paper_default();
        let y = sas.exp(x);
        prop_assert!((0.0..=1.001).contains(&y));
        // Within the live range the approximation is tight.
        if x >= -6.0 {
            prop_assert!((y - x.exp()).abs() < 2e-3);
        }
    }

    #[test]
    fn flash_equals_naive_for_random_shapes(
        seed in any::<u64>(),
        n in 1usize..40,
        d in 1usize..16,
        br in 1usize..16,
        bc in 1usize..16,
    ) {
        let mut rng = TensorRng::new(seed);
        let q = rng.normal(n, d, 0.0, 1.0);
        let k = rng.normal(n, d, 0.0, 1.0);
        let v = rng.normal(n, d, 0.0, 1.0);
        let a = naive_attention(&q, &k, &v, Masking::Causal);
        let b = flash_attention(&q, &k, &v, Masking::Causal, br, bc);
        prop_assert!(max_abs_error(&a, &b) < 1e-4);
    }

    #[test]
    fn attention_output_rows_are_convex_combinations(
        seed in any::<u64>(),
        n in 1usize..32,
        d in 1usize..12,
    ) {
        let mut rng = TensorRng::new(seed);
        let q = rng.normal(n, d, 0.0, 2.0);
        let k = rng.normal(n, d, 0.0, 2.0);
        let v = rng.normal(n, d, 0.0, 2.0);
        let out = naive_attention(&q, &k, &v, Masking::Full);
        let (lo, hi) = (v.min(), v.max());
        for &x in out.as_slice() {
            prop_assert!(x >= lo - 1e-4 && x <= hi + 1e-4);
        }
    }

    #[test]
    fn quantized_cache_len_tracks_appends(
        n in 1usize..100,
        nb in 1usize..32,
    ) {
        let mut cache = turbo_kvcache::HeadKvCache::new(
            4,
            turbo_kvcache::KvCacheConfig {
                bits: BitWidth::Int4,
                group_size: 8,
                buffer_capacity: nb,
            },
        );
        let mut rng = TensorRng::new(n as u64);
        for _ in 0..n {
            let row: Vec<f32> = (0..4).map(|_| rng.standard_normal()).collect();
            cache.append(&row, &row);
        }
        prop_assert_eq!(cache.len(), n);
        prop_assert!(cache.buffer_len() < nb);
        let (k, v) = cache.dequantize_all();
        prop_assert_eq!(k.rows(), n);
        prop_assert_eq!(v.rows(), n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn persisted_cache_round_trips(
        n in 1usize..80,
        d in 1usize..24,
        nb in 1usize..32,
        seed in any::<u64>(),
        bits in prop_oneof![Just(BitWidth::Int2), Just(BitWidth::Int4)],
    ) {
        let mut cache = turbo_kvcache::HeadKvCache::new(
            d,
            turbo_kvcache::KvCacheConfig {
                bits,
                group_size: 8,
                buffer_capacity: nb,
            },
        );
        let mut rng = TensorRng::new(seed);
        for _ in 0..n {
            let row: Vec<f32> = (0..d).map(|_| rng.standard_normal()).collect();
            cache.append(&row, &row);
        }
        let back = turbo_kvcache::HeadKvCache::from_bytes(&cache.to_bytes())
            .expect("round trip must decode");
        prop_assert_eq!(back.len(), cache.len());
        prop_assert_eq!(back.dequantize_all(), cache.dequantize_all());
    }

    #[test]
    fn fp8_rounding_is_idempotent_and_monotone(a in -500.0f32..500.0, b in -500.0f32..500.0) {
        use turbo_tensor::fp8::round_e4m3;
        let ra = round_e4m3(a);
        prop_assert_eq!(round_e4m3(ra), ra); // grid values are fixed points
        if a <= b {
            prop_assert!(ra <= round_e4m3(b));
        }
    }

    #[test]
    fn sliding_window_flash_matches_naive(
        seed in any::<u64>(),
        n in 2usize..32,
        w in 1usize..16,
        br in 1usize..8,
        bc in 1usize..8,
    ) {
        let mut rng = TensorRng::new(seed);
        let q = rng.normal(n, 4, 0.0, 1.0);
        let k = rng.normal(n, 4, 0.0, 1.0);
        let v = rng.normal(n, 4, 0.0, 1.0);
        let a = naive_attention(&q, &k, &v, Masking::SlidingWindow(w));
        let b = flash_attention(&q, &k, &v, Masking::SlidingWindow(w), br, bc);
        prop_assert!(max_abs_error(&a, &b) < 1e-4);
    }
}
