//! Property-based invariants spanning the quantization, softmax and
//! attention crates.
//!
//! Implemented as deterministic seeded sweeps over [`TensorRng`] (the
//! workspace builds offline with no external crates), preserving the
//! same invariants the original proptest suite asserted: each test runs
//! a fixed number of randomized cases from a fixed seed, so failures
//! reproduce exactly.

use turbo_attention::{flash_attention, naive_attention, Masking};
use turbo_quant::{AsymQuantized, BitWidth, PackedCodes, ProgressiveBlock, SymQuantized};
use turbo_softmax::{softmax, Sas};
use turbo_tensor::{max_abs_error, Matrix, TensorRng};

const CASES: usize = 64;

/// One random small matrix per case: shape in [1, 24), std in [0.1, 8).
fn random_matrix(rng: &mut TensorRng) -> Matrix {
    let r = 1 + rng.index(23);
    let c = 1 + rng.index(23);
    let scale = rng.uniform_value(0.1, 8.0);
    rng.normal(r, c, 0.0, scale)
}

#[test]
fn symmetric_quant_error_is_bounded() {
    let mut rng = TensorRng::new(0x5EED_0001);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng);
        let q = SymQuantized::quantize(&m);
        let back = q.dequantize();
        assert!(max_abs_error(&m, &back) <= q.scale() * 0.5 + 1e-6);
    }
}

#[test]
fn progressive_round_trip_bounded_by_step() {
    let mut rng = TensorRng::new(0x5EED_0002);
    for case in 0..CASES {
        let m = random_matrix(&mut rng);
        let bits = if case % 2 == 0 {
            BitWidth::Int2
        } else {
            BitWidth::Int4
        };
        let group = 1 + rng.index(31);
        let pq = ProgressiveBlock::quantize(&m, bits, group);
        let back = pq.dequantize();
        // Worst case: stage-1 half step + stage-2 scale (≤ range/levels
        // with round-off and clamp slack).
        let stage2_step = 256.0 / (bits.levels() - 1) as f32;
        let bound = pq.outer_scale() * (0.5 + 2.0 * stage2_step);
        assert!(
            max_abs_error(&m, &back) <= bound,
            "error {} > bound {bound}",
            max_abs_error(&m, &back)
        );
    }
}

#[test]
fn packing_round_trips() {
    let mut rng = TensorRng::new(0x5EED_0003);
    for _ in 0..CASES {
        let len = rng.index(200);
        let codes: Vec<u8> = (0..len).map(|_| rng.index(4) as u8).collect();
        let p = PackedCodes::pack(&codes, BitWidth::Int2);
        assert_eq!(p.unpack(), codes);
    }
}

#[test]
fn asymmetric_quant_error_bounded() {
    const WIDTHS: [BitWidth; 4] = [
        BitWidth::Int2,
        BitWidth::Int3,
        BitWidth::Int4,
        BitWidth::Int8,
    ];
    let mut rng = TensorRng::new(0x5EED_0004);
    for case in 0..CASES {
        let len = 1 + rng.index(127);
        let xs: Vec<f32> = (0..len).map(|_| rng.uniform_value(-100.0, 100.0)).collect();
        let bits = WIDTHS[case % WIDTHS.len()];
        let q = AsymQuantized::quantize(&xs, bits);
        let back = q.dequantize();
        for (x, y) in xs.iter().zip(&back) {
            assert!((x - y).abs() <= q.half_step() + 1e-4);
        }
    }
}

#[test]
fn softmax_outputs_are_distributions() {
    let mut rng = TensorRng::new(0x5EED_0005);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng);
        let p = softmax(&m);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(p.row(r).iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
        }
    }
}

#[test]
fn sas_softmax_outputs_are_distributions() {
    let mut rng = TensorRng::new(0x5EED_0006);
    let sas = Sas::paper_default();
    for _ in 0..CASES {
        let m = random_matrix(&mut rng);
        let p = sas.softmax(&m);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(p.row(r).iter().all(|&x| x >= 0.0));
        }
    }
}

#[test]
fn sas_exp_never_exceeds_small_bound() {
    let mut rng = TensorRng::new(0x5EED_0007);
    let sas = Sas::paper_default();
    for _ in 0..256 {
        let x = rng.uniform_value(-100.0, 0.0);
        let y = sas.exp(x);
        assert!((0.0..=1.001).contains(&y));
        // Within the live range the approximation is tight.
        if x >= -6.0 {
            assert!((y - x.exp()).abs() < 2e-3);
        }
    }
}

#[test]
fn flash_equals_naive_for_random_shapes() {
    let mut rng = TensorRng::new(0x5EED_0008);
    for _ in 0..CASES {
        let n = 1 + rng.index(39);
        let d = 1 + rng.index(15);
        let br = 1 + rng.index(15);
        let bc = 1 + rng.index(15);
        let q = rng.normal(n, d, 0.0, 1.0);
        let k = rng.normal(n, d, 0.0, 1.0);
        let v = rng.normal(n, d, 0.0, 1.0);
        let a = naive_attention(&q, &k, &v, Masking::Causal);
        let b = flash_attention(&q, &k, &v, Masking::Causal, br, bc);
        assert!(max_abs_error(&a, &b) < 1e-4);
    }
}

#[test]
fn attention_output_rows_are_convex_combinations() {
    let mut rng = TensorRng::new(0x5EED_0009);
    for _ in 0..CASES {
        let n = 1 + rng.index(31);
        let d = 1 + rng.index(11);
        let q = rng.normal(n, d, 0.0, 2.0);
        let k = rng.normal(n, d, 0.0, 2.0);
        let v = rng.normal(n, d, 0.0, 2.0);
        let out = naive_attention(&q, &k, &v, Masking::Full);
        let (lo, hi) = (v.min(), v.max());
        for &x in out.as_slice() {
            assert!(x >= lo - 1e-4 && x <= hi + 1e-4);
        }
    }
}

#[test]
fn quantized_cache_len_tracks_appends() {
    let mut rng = TensorRng::new(0x5EED_000A);
    for _ in 0..CASES {
        let n = 1 + rng.index(99);
        let nb = 1 + rng.index(31);
        let mut cache = turbo_kvcache::HeadKvCache::new(
            4,
            turbo_kvcache::KvCacheConfig {
                bits: BitWidth::Int4,
                group_size: 8,
                buffer_capacity: nb,
            },
        );
        for _ in 0..n {
            let row: Vec<f32> = (0..4).map(|_| rng.standard_normal()).collect();
            cache.append(&row, &row);
        }
        assert_eq!(cache.len(), n);
        assert!(cache.buffer_len() < nb);
        let (k, v) = cache.dequantize_all();
        assert_eq!(k.rows(), n);
        assert_eq!(v.rows(), n);
    }
}

#[test]
fn persisted_cache_round_trips() {
    let mut rng = TensorRng::new(0x5EED_000B);
    for case in 0..32 {
        let n = 1 + rng.index(79);
        let d = 1 + rng.index(23);
        let nb = 1 + rng.index(31);
        let bits = if case % 2 == 0 {
            BitWidth::Int2
        } else {
            BitWidth::Int4
        };
        let mut cache = turbo_kvcache::HeadKvCache::new(
            d,
            turbo_kvcache::KvCacheConfig {
                bits,
                group_size: 8,
                buffer_capacity: nb,
            },
        );
        for _ in 0..n {
            let row: Vec<f32> = (0..d).map(|_| rng.standard_normal()).collect();
            cache.append(&row, &row);
        }
        let back = turbo_kvcache::HeadKvCache::from_bytes(&cache.to_bytes())
            .expect("round trip must decode");
        assert_eq!(back.len(), cache.len());
        assert_eq!(back.dequantize_all(), cache.dequantize_all());
    }
}

#[test]
fn fp8_rounding_is_idempotent_and_monotone() {
    use turbo_tensor::fp8::round_e4m3;
    let mut rng = TensorRng::new(0x5EED_000C);
    for _ in 0..256 {
        let a = rng.uniform_value(-500.0, 500.0);
        let b = rng.uniform_value(-500.0, 500.0);
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let ra = round_e4m3(a);
        assert_eq!(round_e4m3(ra), ra); // grid values are fixed points
        assert!(ra <= round_e4m3(b));
    }
}

#[test]
fn sliding_window_flash_matches_naive() {
    let mut rng = TensorRng::new(0x5EED_000D);
    for _ in 0..32 {
        let n = 2 + rng.index(30);
        let w = 1 + rng.index(15);
        let br = 1 + rng.index(7);
        let bc = 1 + rng.index(7);
        let q = rng.normal(n, 4, 0.0, 1.0);
        let k = rng.normal(n, 4, 0.0, 1.0);
        let v = rng.normal(n, 4, 0.0, 1.0);
        let a = naive_attention(&q, &k, &v, Masking::SlidingWindow(w));
        let b = flash_attention(&q, &k, &v, Masking::SlidingWindow(w), br, bc);
        assert!(max_abs_error(&a, &b) < 1e-4);
    }
}
