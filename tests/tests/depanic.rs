//! De-panic regression suite: poisoned serving state must degrade to
//! `Rejected`, never to a panic.
//!
//! The serving and replica layers run inside long-lived fleet loops, so
//! a panic on a weird-but-reachable state (every replica dead, NaN-prone
//! latency comparisons, hedges promoted onto dead backups, zero-width
//! deadlines) would take down the whole control plane. These tests pin
//! the discipline: the hot paths use `total_cmp`/`fold`/`filter` instead
//! of `unwrap()`/`expect()`, and every adversarial configuration lands
//! in the ledger as rejections or truncations.

use turbo_gpusim::{
    run_replica_set, AttnMethod, GpuSpec, ModelGeometry, ReplicaSetConfig, WorkloadSpec,
};
use turbo_robust::{ChaosAction, ChaosEvent, HealthStats};

fn setup() -> (GpuSpec, ModelGeometry) {
    (GpuSpec::a100_80gb(), ModelGeometry::phi3_medium())
}

fn workload(seed: u64) -> Vec<turbo_gpusim::RequestSpec> {
    WorkloadSpec {
        n: 12,
        rate: 3.0,
        prompt: 256,
        gen: 8,
        seed,
    }
    .requests()
}

/// Every replica dies before the first arrival and never comes back
/// within most deadlines: the router faces a fully poisoned set. All
/// requests must land in a terminal bucket — no panic, no ledger leak.
#[test]
fn total_fleet_wipeout_rejects_instead_of_panicking() {
    let (gpu, geom) = setup();
    let cfg = ReplicaSetConfig {
        replicas: 3,
        prefix_tokens: 64,
        prefix_dim: 4,
        ..ReplicaSetConfig::default()
    };
    let events: Vec<ChaosEvent> = (0..3)
        .map(|r| ChaosEvent {
            time: 1e-9,
            action: ChaosAction::KillReplica {
                replica: r,
                wal_cut: 0.5,
            },
        })
        .collect();
    let reqs = workload(0xDEAD);
    let health = HealthStats::new();
    let stats = run_replica_set(
        &gpu,
        &geom,
        AttnMethod::FlashFp16,
        &reqs,
        &events,
        &cfg,
        0xDEAD,
        Some(&health),
    );
    assert_eq!(stats.accounted(), stats.total);
    assert_eq!(stats.total, reqs.len());
    assert_eq!(stats.kills, 3);
    assert_eq!(stats.lost_tokens, 0);
}

/// Hedging with the backup also under fire: the promotion path must use
/// the guarded `filter` route (a dead backup is simply not promoted),
/// and repeated kills across both primaries and backups stay panic-free.
#[test]
fn hedging_onto_dying_backups_stays_panic_free() {
    let (gpu, geom) = setup();
    let cfg = ReplicaSetConfig {
        replicas: 2,
        hedge_threshold: Some(0.05),
        prefix_tokens: 64,
        prefix_dim: 4,
        ..ReplicaSetConfig::default()
    };
    // Alternate kills on both replicas throughout the run so hedges keep
    // promoting onto replicas that are about to die (or already dead).
    let events: Vec<ChaosEvent> = (0..6)
        .map(|i| ChaosEvent {
            time: 0.5 + i as f64 * 0.7,
            action: ChaosAction::KillReplica {
                replica: i % 2,
                wal_cut: 0.3 + 0.1 * i as f64,
            },
        })
        .collect();
    let reqs = workload(0xBEEF);
    let stats = run_replica_set(
        &gpu,
        &geom,
        AttnMethod::FlashFp16,
        &reqs,
        &events,
        &cfg,
        0xBEEF,
        None,
    );
    assert_eq!(stats.accounted(), stats.total);
    assert_eq!(stats.lost_tokens, 0);
    assert_eq!(
        stats.recovered_tokens + stats.reprefilled_tokens,
        stats.kills * cfg.prefix_tokens
    );
}

/// A zero-width deadline rejects every request at admission; the
/// latency-percentile and max-fold paths then run over empty/degenerate
/// sets and must not unwrap.
#[test]
fn zero_width_deadline_rejects_everything_without_panicking() {
    let (gpu, geom) = setup();
    let mut cfg = ReplicaSetConfig {
        replicas: 2,
        prefix_tokens: 64,
        prefix_dim: 4,
        ..ReplicaSetConfig::default()
    };
    cfg.policy.deadline = 1e-12;
    let reqs = workload(0xFEED);
    let stats = run_replica_set(
        &gpu,
        &geom,
        AttnMethod::FlashFp16,
        &reqs,
        &[],
        &cfg,
        0xFEED,
        None,
    );
    assert_eq!(stats.accounted(), stats.total);
    assert_eq!(stats.completed, 0, "nothing can meet a zero deadline");
    // Whatever was served (truncated at the deadline) has a recorded
    // latency; the percentile/max paths survived the degenerate set.
    let served: usize = stats
        .per_replica
        .iter()
        .flatten()
        .map(|r| r.latencies.len())
        .sum();
    assert_eq!(served, stats.completed + stats.truncated);
}
