//! Coarse accuracy-shape checks: the qualitative relationships Table 2 /
//! Table 4 / Figure 7b report must hold on the synthetic substrate.
//!
//! These use modest episode counts to stay fast; the `figures` binary
//! regenerates the full tables.

use turbo_model::backend::{
    Backend, Fp16Backend, GearBackend, KiviBackend, SasOnlyBackend, TurboBackend,
};
use turbo_model::{evaluate, EvalConfig, ModelProfile, TaskSuite, WeightQuant};
use turbo_quant::BitWidth;

fn cfg() -> EvalConfig {
    EvalConfig {
        episodes: 40,
        seed: 0x5EED,
    }
}

/// Average accuracy across all nine (profile, suite) cells.
fn avg_accuracy(b: &dyn Backend) -> f64 {
    let mut sum = 0.0;
    let mut n = 0;
    for p in ModelProfile::paper_profiles() {
        for s in TaskSuite::paper_suites() {
            sum += evaluate(b, &p, &s, &cfg()).accuracy;
            n += 1;
        }
    }
    sum / n as f64
}

#[test]
fn table2_shape_holds_on_average() {
    let fp16 = avg_accuracy(&Fp16Backend);
    let turbo4 = avg_accuracy(&TurboBackend::int4());
    let kivi4 = avg_accuracy(&KiviBackend::new(BitWidth::Int4));
    let kivi3 = avg_accuracy(&KiviBackend::new(BitWidth::Int3));
    let gear3 = avg_accuracy(&GearBackend::new(BitWidth::Int3));
    let mixed = avg_accuracy(&TurboBackend::mixed(4));

    // Near-lossless 4-bit TurboAttention (paper: 60.27 vs 61.89).
    assert!(
        turbo4 >= fp16 - 0.06,
        "turbo4 {turbo4} should be within 6 points of fp16 {fp16}"
    );
    // TurboAttention competitive with KIVI at 4-bit. (The paper reports a
    // large Turbo advantage — 60.27 vs 51.85 — that our substrate does not
    // reproduce: KIVI's fine-grained float groups are numerically strong
    // here; see EXPERIMENTS.md. We assert Turbo stays within a few points.)
    assert!(turbo4 >= kivi4 - 0.06, "turbo4 {turbo4} vs kivi4 {kivi4}");
    // 3-bit does not beat 4-bit beyond noise. (The paper's 3-bit drop is
    // ~14 points; our substrate's 4→3-bit gradient is shallower — the
    // margins are dominated by task noise until 2-bit. The strong,
    // reliably reproduced gradient is 4-bit vs 2-bit, asserted in
    // `accuracy_falls_monotonically_with_bits_for_kivi`.)
    assert!(kivi3 <= kivi4 + 0.03, "kivi3 {kivi3} vs kivi4 {kivi4}");
    // Mixed 2/4 Turbo is competitive with the 3-bit baselines
    // (paper: 53.31 vs 51.10/50.01 — with individual cells much worse,
    // e.g. Phi3/AQuA at 31.5; our mixed rows show the same harsh cells).
    assert!(
        mixed >= kivi3.min(gear3) - 0.10,
        "mixed {mixed} vs kivi3 {kivi3} gear3 {gear3}"
    );
}

#[test]
fn gear_error_compensation_beats_kivi_at_low_bits() {
    // Paper Table 2: GEAR-L > KIVI at both 4- and 3-bit averages.
    let kivi3 = avg_accuracy(&KiviBackend::new(BitWidth::Int3));
    let gear3 = avg_accuracy(&GearBackend::new(BitWidth::Int3));
    assert!(gear3 >= kivi3, "gear3 {gear3} vs kivi3 {kivi3}");
}

#[test]
fn table4_shape_each_component_is_near_lossless() {
    // Paper Table 4 (LLaMA3/AQuA): FP16 50.79, FlashQ 49.60, SAS 50.12,
    // combined 48.03 — each component costs little, combined costs most.
    let p = ModelProfile::llama3_like();
    let s = TaskSuite::aqua_proxy();
    let e = |b: &dyn Backend| evaluate(b, &p, &s, &cfg()).accuracy;
    let fp16 = e(&Fp16Backend);
    let flashq = e(&TurboBackend::flashq_only());
    let sas = e(&SasOnlyBackend::default());
    let combined = e(&TurboBackend::int4());
    assert!(sas >= fp16 - 0.08, "sas {sas} vs fp16 {fp16}");
    assert!(flashq >= fp16 - 0.1, "flashq {flashq} vs fp16 {fp16}");
    assert!(
        combined >= fp16 - 0.12,
        "combined {combined} vs fp16 {fp16}"
    );
    assert!(
        combined <= flashq.max(sas) + 0.05,
        "combined {combined} should not beat its components materially"
    );
}

#[test]
fn table5_weight_quant_composes() {
    // Weight quantization costs little, and TurboAttention on top costs
    // little more (paper Table 5).
    let s = TaskSuite::gsm8k_proxy();
    let base = ModelProfile::llama3_like();
    let int8 = base.with_weight_quant(WeightQuant::Int8PerChannel);
    let e = |p: &ModelProfile, b: &dyn Backend| evaluate(b, p, &s, &cfg()).accuracy;
    let fp16 = e(&base, &Fp16Backend);
    let w8 = e(&int8, &Fp16Backend);
    let w8_turbo = e(&int8, &TurboBackend::int4());
    assert!(w8 >= fp16 - 0.08, "w8 {w8} vs fp16 {fp16}");
    assert!(w8_turbo >= w8 - 0.1, "w8+turbo {w8_turbo} vs w8 {w8}");
}

#[test]
fn figure7b_priority_is_at_least_as_good_as_alternatives_at_half() {
    use turbo_attention::SelectionMethod;
    let p = ModelProfile::llama3_like();
    let s = TaskSuite::aqua_proxy();
    let e = |m| evaluate(&TurboBackend::mixed_with(4, m), &p, &s, &cfg()).accuracy;
    let priority = e(SelectionMethod::Priority);
    let entropy = e(SelectionMethod::Entropy);
    // Priority protects the fragile anisotropic heads; entropy demotes
    // them (heavy-tailed histograms have low entropy), so priority must
    // beat entropy clearly.
    assert!(
        priority > entropy + 0.05,
        "priority {priority} vs entropy {entropy}"
    );
}

#[test]
fn accuracy_falls_monotonically_with_bits_for_kivi() {
    let p = ModelProfile::qwen2_like();
    let s = TaskSuite::gsm8k_proxy();
    let e = |bits| evaluate(&KiviBackend::new(bits), &p, &s, &cfg()).accuracy;
    let a8 = e(BitWidth::Int8);
    let a4 = e(BitWidth::Int4);
    let a2 = e(BitWidth::Int2);
    assert!(a8 >= a4 - 0.05, "int8 {a8} vs int4 {a4}");
    assert!(a4 > a2, "int4 {a4} vs int2 {a2}");
}

#[test]
fn quarot_composes_losslessly_with_turbo() {
    // Table 1 claims rotation schemes are orthogonal to TurboAttention:
    // rotating Q/K must not cost accuracy (scores are invariant exactly;
    // quantization sees smeared outliers).
    use turbo_model::backend::QuarotTurboBackend;
    let p = ModelProfile::llama3_like();
    let s = TaskSuite::gsm8k_proxy();
    let plain = evaluate(&TurboBackend::int4(), &p, &s, &cfg()).accuracy;
    let rotated = evaluate(&QuarotTurboBackend::int4(), &p, &s, &cfg()).accuracy;
    assert!(rotated >= plain - 0.08, "quarot {rotated} vs plain {plain}");
}
