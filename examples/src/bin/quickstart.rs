//! Quickstart: quantized attention in a dozen lines.
//!
//! Prefills one attention head with TurboAttention (INT8 execution + SAS
//! softmax, progressive INT4 KV cache), decodes a few more tokens, and
//! reports accuracy against exact attention plus the cache's compression
//! ratio.

use turbo_attention::{naive_attention, Masking, TurboAttention, TurboConfig};
use turbo_tensor::{relative_error, Matrix, TensorRng};

fn main() {
    let mut rng = TensorRng::new(2024);
    let (tokens, d) = (512usize, 64usize);
    let q = rng.normal(tokens, d, 0.0, 1.0);
    let k = rng.normal(tokens, d, 0.0, 1.0);
    let v = rng.normal(tokens, d, 0.0, 1.0);

    // 1. Prefill with the paper-default engine (B_r = B_c = n_b = 64,
    //    INT4 cache, SAS threshold -6).
    let engine = TurboAttention::new(TurboConfig::default());
    let (out, mut cache) = engine.prefill_head(&q, &k, &v);

    let exact = naive_attention(&q, &k, &v, Masking::Causal);
    println!("prefill: {} tokens, head dim {}", tokens, d);
    println!(
        "  relative error vs exact attention: {:.4}",
        relative_error(&out, &exact)
    );

    // 2. Decode 32 more tokens against the quantized cache.
    let mut ks = k.clone();
    let mut vs = v.clone();
    let mut last_err = 0.0;
    for _ in 0..32 {
        let qt = rng.normal(1, d, 0.0, 1.0);
        let kt = rng.normal(1, d, 0.0, 1.0);
        let vt = rng.normal(1, d, 0.0, 1.0);
        ks.append_rows(&kt);
        vs.append_rows(&vt);
        let step = engine.decode_head(qt.row(0), kt.row(0), vt.row(0), &mut cache);
        let exact_step = naive_attention(&qt, &ks, &vs, Masking::Causal);
        let step_m = Matrix::from_vec(1, d, step);
        last_err = relative_error(&step_m, &exact_step);
    }
    println!("decode: 32 steps, final-step relative error {last_err:.4}");

    // 3. Memory accounting.
    let stats = cache.memory_stats();
    println!(
        "KV cache: {} tokens in {} bytes ({:.1}x smaller than FP16's {} bytes)",
        cache.len(),
        stats.total_bytes(),
        stats.compression_ratio(),
        stats.fp16_bytes
    );
}
