//! Prefix-cache serving with GQA and split-K decode.
//!
//! Scenario: a server keeps the quantized KV cache of a shared system
//! prompt on disk. Per request it (1) reloads the compressed prefix
//! instead of re-prefilling, (2) decodes with grouped-query attention
//! (4 query heads per KV head, as LLaMA3/Phi-3 ship), and (3) answers
//! long-context queries with FlashDecoding-style split-K partitions over
//! the quantized cache.

use turbo_attention::{
    turbo_attend_cache, turbo_attend_cache_splitk, GqaLayout, TurboAttention, TurboConfig,
};
use turbo_kvcache::HeadKvCache;
use turbo_tensor::{Matrix, TensorRng};

fn main() {
    let mut rng = TensorRng::new(1234);
    let layout = GqaLayout::new(8, 2); // 8 query heads share 2 KV heads
    let (prefix_len, d) = (1024usize, 64usize);

    // --- Offline: prefill the shared prefix once and persist it. -------
    let engine = TurboAttention::new(TurboConfig::default());
    let qs: Vec<Matrix> = (0..layout.q_heads)
        .map(|_| rng.normal(prefix_len, d, 0.0, 1.0))
        .collect();
    let ks: Vec<Matrix> = (0..layout.kv_heads)
        .map(|_| rng.normal(prefix_len, d, 0.0, 1.0))
        .collect();
    let vs: Vec<Matrix> = (0..layout.kv_heads)
        .map(|_| rng.normal(prefix_len, d, 0.0, 1.0))
        .collect();
    let (_, cache) = engine.prefill_layer_gqa(layout, &qs, &ks, &vs, 1);

    let payloads: Vec<Vec<u8>> = (0..layout.kv_heads)
        .map(|h| cache.head(h).to_bytes())
        .collect();
    let stored: usize = payloads.iter().map(Vec::len).sum();
    let fp16 = 2 * 2 * prefix_len * d * layout.kv_heads;
    println!(
        "persisted {prefix_len}-token prefix: {} KiB on disk vs {} KiB FP16 ({:.1}x smaller)",
        stored / 1024,
        fp16 / 1024,
        fp16 as f64 / stored as f64
    );

    // --- Online: a request arrives; reload the prefix per KV head. -----
    let reloaded: Vec<HeadKvCache> = payloads
        .iter()
        .map(|p| HeadKvCache::from_bytes(p).expect("stored prefix must decode"))
        .collect();
    println!(
        "reloaded prefix: {} tokens x {} KV heads (bit-identical to the original: {})",
        reloaded[0].len(),
        reloaded.len(),
        (0..layout.kv_heads)
            .all(|h| reloaded[h].dequantize_all() == cache.head(h).dequantize_all())
    );

    // --- Serve: split-K decode across the long cached context. ---------
    let sas = engine.sas();
    let mut fused_vs_split_worst = 0.0f32;
    for _ in 0..8 {
        let q_rows: Vec<Vec<f32>> = (0..layout.q_heads)
            .map(|_| (0..d).map(|_| rng.standard_normal()).collect::<Vec<f32>>())
            .collect();
        for (qh, q) in q_rows.iter().enumerate() {
            let kv = layout.kv_head_of(qh);
            let fused = turbo_attend_cache(q, &reloaded[kv], sas);
            let split = turbo_attend_cache_splitk(q, &reloaded[kv], sas);
            for (a, b) in fused.iter().zip(&split) {
                fused_vs_split_worst = fused_vs_split_worst.max((a - b).abs());
            }
        }
    }
    println!(
        "split-K decode over {} partitions agrees with fused decode to {:.2e}",
        reloaded[0].resident_blocks().len(),
        fused_vs_split_worst
    );
}
