//! Fleet drill: a diurnal day of traffic, a correlated-failure burst,
//! and the control plane steering through it.
//!
//! Three acts:
//!   1. a simulated two-million-user population runs three diurnal days
//!      against an autoscaled replica fleet; every 6th epoch a
//!      correlated chaos burst (multi-replica kill + pressure storm)
//!      hits the set,
//!   2. the SLO tracker, AIMD tuner, and autoscaler react — scale-up on
//!      breach, cold replicas warming up through WAL rebuild, drain-
//!      then-retire once the fleet runs healthy — and the drill prints
//!      the epoch-by-epoch story plus the recovery ledger,
//!   3. the same fleet replays from its seed and lands on the exact
//!      same end state, event trace included, byte for byte.
//!
//! Run with `cargo run --release --bin fleet_drill`.

use turbo_gpusim::{
    run_fleet, AttnMethod, FleetConfig, GpuSpec, ModelGeometry, ScaleDecision,
};
use turbo_robust::{HealthEvent, HealthStats};

fn main() {
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let cfg = FleetConfig::default();
    let seed = 2026;

    println!(
        "1. fleet: {} users, {} epochs ({} per diurnal day), correlated burst every {} epochs",
        cfg.workload.users, cfg.epochs, cfg.workload.epochs_per_day, cfg.burst_every
    );
    let health = HealthStats::new();
    let stats = run_fleet(
        &gpu,
        &geom,
        AttnMethod::Turbo { kv_bits: 4.0 },
        &cfg,
        seed,
        Some(&health),
    );

    println!("2. epoch-by-epoch:");
    for e in &stats.epochs {
        let marker = if e.bursts.is_empty() { "  " } else { "⚡" };
        let decision = match e.decision {
            ScaleDecision::Hold => String::from("hold"),
            ScaleDecision::Up(n) => format!("scale up +{n}"),
            ScaleDecision::Down => String::from("drain & retire 1"),
        };
        println!(
            "   {marker} ep{:2}  replicas={} (+{} cold)  rate={:5.2}/s  \
             {}/{}/{} ok/trunc/rej  p99={:6.3}s  viol={:4.1}%  -> {decision}",
            e.epoch,
            e.replicas,
            e.spawned,
            e.rate,
            e.completed,
            e.truncated,
            e.rejected,
            e.p99,
            100.0 * e.violation_rate,
        );
    }
    println!(
        "   ledger: {} completed + {} truncated + {} rejected = {} submitted (exactly once)",
        stats.completed, stats.truncated, stats.rejected, stats.total
    );
    println!(
        "   kills {} (chaos + cold spawns) — {} tokens back via WAL replay, {} re-prefilled, {} lost",
        stats.kills, stats.recovered_tokens, stats.reprefilled_tokens, stats.lost_tokens
    );
    for r in &stats.recoveries {
        println!(
            "   burst at epoch {:2}: SLO recovered in {} epoch(s){}",
            r.burst_epoch,
            r.recovery_epochs,
            if r.within_bound { "" } else { "  ** OVER BOUND **" }
        );
    }
    println!(
        "   tuner: position {:.2} after {} windows ({} backoffs, {} relaxes); \
         scale-ups {}, scale-downs {}",
        stats.tuner_position,
        stats.tuner_counters.0,
        stats.tuner_counters.1,
        stats.tuner_counters.2,
        stats.scale_ups,
        stats.scale_downs,
    );
    println!(
        "   health: {} slo violations, {} bursts, {} breaker trips",
        health.count(HealthEvent::SloViolation),
        health.count(HealthEvent::ChaosBurst),
        health.count(HealthEvent::BreakerOpened),
    );
    assert_eq!(stats.accounted(), stats.total);
    assert_eq!(stats.lost_tokens, 0);
    assert!(stats.recoveries.iter().all(|r| r.within_bound));

    // 3. Determinism: the same seed replays to the same fleet history.
    let again = run_fleet(
        &gpu,
        &geom,
        AttnMethod::Turbo { kv_bits: 4.0 },
        &cfg,
        seed,
        None,
    );
    assert_eq!(stats, again);
    println!(
        "3. replayed fleet from seed {seed}: {} trace events identical, bit for bit",
        stats.trace.len()
    );
}
