//! A100 serving-capacity planning with the analytical cost model.
//!
//! Scenario: you operate Phi3-medium on a single A100-80GB and want to
//! know, for a given prompt/generation profile, which attention method
//! yields the best latency and throughput and how far the batch size can
//! be pushed before OOM.

use turbo_gpusim::{
    decode_latency, generation_breakdown, max_throughput, memory_usage, prefill_latency,
    AttnMethod, GpuSpec, ModelGeometry,
};

fn main() {
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let (prompt, gen, batch) = (8192usize, 256usize, 4usize);

    println!(
        "capacity plan: {} on {}, prompt {prompt}, gen {gen}, batch {batch}\n",
        geom.name, gpu.name
    );

    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>10} {:>14}",
        "method", "mem (GB)", "prefill (ms)", "decode (ms)", "e2e (s)", "max tok/s"
    );
    for m in AttnMethod::figure6_lineup() {
        let mem = memory_usage(&geom, m, batch, prompt + gen) / 1e9;
        let fits = mem <= gpu.usable_memory() / 1e9;
        let prefill = prefill_latency(&gpu, &geom, m, batch, prompt).total() * 1e3;
        let decode = decode_latency(&gpu, &geom, m, batch, prompt).total() * 1e3;
        let e2e = generation_breakdown(&gpu, &geom, m, batch, prompt, gen).total();
        let best = max_throughput(&gpu, &geom, m, 1024, 125, 4096);
        println!(
            "{:<22} {:>10.1}{} {:>11.1} {:>12.2} {:>10.2} {:>14}",
            m.to_string(),
            mem,
            if fits { " " } else { "!" },
            prefill,
            decode,
            e2e,
            best.map(|(b, t)| format!("{t:.0} (b={b})"))
                .unwrap_or_else(|| "OOM".into()),
        );
    }
    println!("\n('!' marks configurations that exceed usable HBM)");

    // Where does FP16 fall over as the context grows?
    println!("\ncontext scaling at batch {batch}:");
    for ctx in [4096usize, 8192, 16384, 32768, 65536] {
        let row: Vec<String> = AttnMethod::figure6_lineup()
            .into_iter()
            .map(|m| {
                let mem = memory_usage(&geom, m, batch, ctx);
                if mem <= gpu.usable_memory() {
                    format!("{m}: ok")
                } else {
                    format!("{m}: OOM")
                }
            })
            .collect();
        println!("  ctx {ctx:>6}: {}", row.join("  "));
    }
}
