//! Chaos drill: kills a replica mid-serving, watches the write-ahead log
//! bring it back, and prints the exactly-once ledger.
//!
//! Three acts:
//!   1. a durable cache takes a mid-stream crash (the WAL torn at an
//!      arbitrary byte offset) and recovers a bit-identical prefix,
//!   2. a seeded chaos plan — kills, a graceful restart, silent WAL rot,
//!      a memory-pressure spike — runs against a 2-replica serving set
//!      with circuit breakers, hedging, and failover retries,
//!   3. the same episode replays from its seed and lands on the exact
//!      same end state, byte for byte.
//!
//! Run with `cargo run --release --bin chaos_drill`.

use turbo_gpusim::{
    run_replica_set, AttnMethod, GpuSpec, ModelGeometry, ReplicaSetConfig, WorkloadSpec,
};
use turbo_kvcache::{DurableHeadCache, KvCacheConfig, WriteAheadLog};
use turbo_quant::BitWidth;
use turbo_robust::{ChaosConfig, ChaosPlan, HealthEvent, HealthStats};
use turbo_tensor::TensorRng;

fn main() {
    // 1. Crash a durable cache mid-write and recover it. 96 tokens go
    //    in, a checkpoint lands at 48, and the crash tears the WAL
    //    roughly two thirds of the way through a record.
    let cfg = KvCacheConfig {
        bits: BitWidth::Int4,
        group_size: 16,
        buffer_capacity: 16,
    };
    let data = TensorRng::new(12).normal(96, 8, 0.0, 1.0);
    let mut durable = DurableHeadCache::new(8, cfg);
    for t in 0..96 {
        if t == 48 {
            durable.checkpoint();
        }
        let row = data.row(t);
        durable.try_append(row, row).expect("append");
    }
    let (snap, mut wal) = durable.durable_state();
    let boundaries = WriteAheadLog::record_boundaries(&wal);
    let torn_at = boundaries[boundaries.len() * 2 / 3] + 5; // mid-record
    wal.truncate(torn_at);
    let health = HealthStats::new();
    let (back, outcome) =
        DurableHeadCache::recover(&snap, &wal, Some(&health)).expect("snapshot anchors recovery");
    println!(
        "1. crash at WAL byte {torn_at}: snapshot 48 + {} replayed appends \
         = {} of 96 tokens back, {} torn bytes dropped",
        outcome.wal.map_or(0, |w| w.appends),
        back.cache().len(),
        outcome.wal.map_or(0, |w| w.dropped_bytes),
    );
    assert_eq!(back.cache().len(), outcome.tokens);

    // 2. A chaos episode against a replica set: the plan is pure data
    //    drawn from a seed; the router handles the rest.
    let seed = 2026;
    let plan = ChaosPlan::generate(
        seed,
        &ChaosConfig {
            replicas: 2,
            horizon: 12.0,
            kills: 2,
            restarts: 1,
            wal_truncations: 1,
            faults: 0,
            pressure_spikes: 1,
            pressure_range: (0.6, 0.9),
            ..ChaosConfig::default()
        },
    );
    println!("2. chaos plan (seed {seed}): {} events", plan.events.len());
    for e in &plan.events {
        println!("   t={:6.2}s  {:?}", e.time, e.action);
    }
    let reqs = WorkloadSpec {
        n: 24,
        rate: 4.0,
        prompt: 1024,
        gen: 32,
        seed,
    }
    .requests();
    let rs_cfg = ReplicaSetConfig {
        prefix_tokens: 64,
        prefix_dim: 4,
        ..ReplicaSetConfig::default()
    };
    let health = HealthStats::new();
    let stats = run_replica_set(
        &GpuSpec::a100_80gb(),
        &ModelGeometry::phi3_medium(),
        AttnMethod::Turbo { kv_bits: 3.0 },
        &reqs,
        &plan.events,
        &rs_cfg,
        seed,
        Some(&health),
    );
    println!(
        "   ledger: {} completed + {} truncated + {} rejected = {} submitted (exactly once)",
        stats.completed, stats.truncated, stats.rejected, stats.total
    );
    println!(
        "   kills {} / rebuilds {} — {} tokens back via WAL replay, {} re-prefilled, {} lost",
        stats.kills,
        stats.rebuilds,
        stats.recovered_tokens,
        stats.reprefilled_tokens,
        stats.lost_tokens
    );
    println!(
        "   failovers {} (hedged {}, hedge saves {}), breaker trips {}",
        stats.failovers,
        stats.hedged,
        stats.hedge_saves,
        health.count(HealthEvent::BreakerOpened)
    );
    assert_eq!(stats.accounted(), stats.total);
    assert_eq!(stats.lost_tokens, 0);

    // 3. Determinism: the same seed replays to the same end state.
    let again = run_replica_set(
        &GpuSpec::a100_80gb(),
        &ModelGeometry::phi3_medium(),
        AttnMethod::Turbo { kv_bits: 3.0 },
        &reqs,
        &plan.events,
        &rs_cfg,
        seed,
        None,
    );
    assert_eq!(stats, again);
    println!("3. replayed episode from seed {seed}: end state identical, bit for bit");
}
