//! Long-context chat serving across a whole attention layer with
//! head-wise mixed precision.
//!
//! Scenario: a chat assistant holds a 2k-token conversation in its KV
//! cache and streams replies. Half the heads exhibit the channel-outlier
//! pattern of Figure 4; the engine's priority metric keeps those at INT4
//! and demotes the calm heads to INT2 (section 3.2), then decoding runs
//! fully quantized.

use turbo_attention::{naive_attention, Masking, TurboAttention, TurboConfig};
use turbo_quant::BitWidth;
use turbo_tensor::{Matrix, TensorRng};

fn main() {
    let mut rng = TensorRng::new(7);
    let (heads, ctx, d) = (8usize, 2048usize, 64usize);

    // Conversation history: half the heads have strong key-channel
    // outliers, like real models do.
    let qs: Vec<Matrix> = (0..heads).map(|_| rng.normal(ctx, d, 0.0, 1.0)).collect();
    let ks: Vec<Matrix> = (0..heads)
        .map(|h| {
            if h % 2 == 0 {
                rng.normal_with_channel_outliers(ctx, d, 1.0, &[3, 17, 40], 18.0)
            } else {
                rng.normal(ctx, d, 0.0, 1.0)
            }
        })
        .collect();
    let vs: Vec<Matrix> = (0..heads).map(|_| rng.normal(ctx, d, 0.0, 1.0)).collect();

    // Prefill with automatic mixed precision: 4 of 8 heads demoted to
    // 2-bit by the gap x std priority metric.
    let engine = TurboAttention::new(TurboConfig::default());
    let (_, mut layer) = engine.prefill_layer_auto(&qs, &ks, &vs, heads / 2);

    println!("prefilled {ctx}-token conversation across {heads} heads");
    for h in 0..heads {
        println!(
            "  head {h}: resident cache {} (outliers: {})",
            layer.head(h).config().bits,
            if h % 2 == 0 { "yes" } else { "no" }
        );
    }
    let stats = layer.memory_stats();
    println!(
        "layer KV cache: {:.1} KiB vs {:.1} KiB FP16 ({:.1}x compression, avg {:.1} bits)",
        stats.total_bytes() as f64 / 1024.0,
        stats.fp16_bytes as f64 / 1024.0,
        stats.compression_ratio(),
        layer.average_bits()
    );

    // Stream a 16-token reply; compare the last step to exact attention.
    let mut full_k = ks.clone();
    let mut full_v = vs.clone();
    let mut worst = 0.0f32;
    for _ in 0..16 {
        let step_q: Vec<Matrix> = (0..heads).map(|_| rng.normal(1, d, 0.0, 1.0)).collect();
        let step_k: Vec<Matrix> = (0..heads).map(|_| rng.normal(1, d, 0.0, 1.0)).collect();
        let step_v: Vec<Matrix> = (0..heads).map(|_| rng.normal(1, d, 0.0, 1.0)).collect();
        let outs = engine.decode_layer_parallel(
            &step_q.iter().map(|m| m.row(0)).collect::<Vec<_>>(),
            &step_k.iter().map(|m| m.row(0)).collect::<Vec<_>>(),
            &step_v.iter().map(|m| m.row(0)).collect::<Vec<_>>(),
            &mut layer,
        );
        for h in 0..heads {
            full_k[h].append_rows(&step_k[h]);
            full_v[h].append_rows(&step_v[h]);
            let exact = naive_attention(&step_q[h], &full_k[h], &full_v[h], Masking::Causal);
            for (a, b) in outs[h].iter().zip(exact.row(0)) {
                worst = worst.max((a - b).abs());
            }
        }
    }
    println!("decoded 16 reply tokens; worst per-element deviation vs exact: {worst:.4}");
    println!(
        "note: INT2 heads carry most of that deviation — rerun with all heads at {} to tighten it",
        BitWidth::Int4
    );

    // Decode ran head-parallel on the shared work-stealing runtime
    // (TURBO_RUNTIME_THREADS caps the pool); identical output to the
    // serial decode_layer path by construction.
    // Only the worker and task counts are deterministic; the
    // stolen/helper split depends on scheduling and would break the
    // identical-stdout contract of these examples.
    let snap = turbo_runtime::global().snapshot();
    println!(
        "runtime: {} workers ran {} decode tasks ({} heads x 16 steps)",
        snap.workers, snap.tasks_run, heads
    );
}
