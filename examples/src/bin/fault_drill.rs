//! Fault drill: injects every fault class the robustness layer handles
//! and shows the stack degrading instead of crashing.
//!
//! Four scenarios, one shared health ledger:
//!   1. NaN/Inf poisoned activations during decode (screened + zeroed),
//!   2. a quantizer-lethal outlier during prefill (precision ladder
//!      climbs INT4 -> INT8 -> FP16),
//!   3. a bit flip in a persisted cache payload (CRC32 fails closed,
//!      recovery salvages the longest valid prefix),
//!   4. HBM pressure in the serving simulator (demote bit width, retry
//!      admission, truncate at deadlines -- every request accounted for).

use turbo_attention::robust::RobustAttention;
use turbo_attention::TurboConfig;
use turbo_gpusim::{
    simulate_serving_robust, uniform_workload, AttnMethod, GpuSpec, ModelGeometry, ServingPolicy,
};
use turbo_kvcache::persist::{deserialize_head_cache, serialize_head_cache};
use turbo_kvcache::{recover_head_cache, HeadKvCache, KvCacheConfig};
use turbo_robust::{FaultInjector, HealthStats};
use turbo_tensor::TensorRng;

fn main() {
    let mut rng = TensorRng::new(7);
    let mut inj = FaultInjector::new(41);
    let global = HealthStats::new();

    // 1. Poisoned activations: every 4th decode step gets a NaN or Inf
    //    somewhere in Q/K/V; the robust engine zeroes and counts them.
    let robust = RobustAttention::new(TurboConfig::default());
    let mut cache = robust.new_cache(32);
    for t in 0..64 {
        let mut q = rng.normal(1, 32, 0.0, 1.0);
        let k = rng.normal(1, 32, 0.0, 1.0);
        let v = rng.normal(1, 32, 0.0, 1.0);
        if t % 4 == 0 {
            inj.inject_non_finite(&mut q, 2);
        }
        let out = robust
            .try_decode(q.row(0), k.row(0), v.row(0), &mut cache)
            .expect("decode survives poisoned activations");
        assert!(out.iter().all(|x| x.is_finite()));
    }
    println!(
        "1. poisoned decode: 64/64 steps finite at {} ({} NaN/Inf elements screened)",
        cache.level(),
        robust.health().count(turbo_robust::HealthEvent::NonFiniteInput)
    );
    global.absorb(robust.health());

    // 2. Scale overflow: one outlier near f32::MAX makes INT4 (and INT8)
    //    quantization impossible; the ladder climbs to the exact rung.
    let robust = RobustAttention::new(TurboConfig::default());
    let q = rng.normal(48, 16, 0.0, 1.0);
    let mut k = rng.normal(48, 16, 0.0, 1.0);
    k.set(11, 5, f32::MAX / 16.0);
    let v = rng.normal(48, 16, 0.0, 1.0);
    let mut cache = robust.new_cache(16);
    let out = robust.try_prefill(&q, &k, &v, &mut cache).unwrap();
    assert!(out.as_slice().iter().all(|x| x.is_finite()));
    println!(
        "2. outlier prefill: 48 tokens served at {} after {} promotion(s)",
        cache.level(),
        robust
            .health()
            .count(turbo_robust::HealthEvent::PrecisionPromotion)
    );
    global.absorb(robust.health());

    // 3. Corrupted persistence: flip bytes in a serialized cache. Strict
    //    decode must fail closed; recovery salvages a whole-block prefix.
    let mut disk_cache = HeadKvCache::new(8, KvCacheConfig::default());
    let data = rng.normal(200, 8, 0.0, 1.0);
    for t in 0..200 {
        disk_cache.append(data.row(t), data.row(t));
    }
    let mut payload = serialize_head_cache(&disk_cache);
    let mid = payload.len() / 2;
    inj.corrupt_bytes(&mut payload[mid..], 3);
    assert!(deserialize_head_cache(&payload).is_err(), "CRC fails closed");
    let health = HealthStats::new();
    let (salvaged, report) = recover_head_cache(&payload, Some(&health)).unwrap();
    println!(
        "3. corrupt payload: strict decode rejected; recovered {}/{} tokens ({} block(s) dropped)",
        report.valid_tokens,
        disk_cache.len(),
        report.dropped_blocks
    );
    assert_eq!(salvaged.len(), report.valid_tokens);
    global.absorb(&health);

    // 4. HBM pressure: only 45 % of HBM usable. The rigid policy would
    //    reject; the flexible one demotes the cache to 2-bit and retries.
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let reqs = uniform_workload(12, 4.0, 4096, 32, 99);
    let health = HealthStats::new();
    let policy = ServingPolicy {
        deadline: 180.0,
        degrade_bits: Some(2.0),
        hbm_usable_fraction: 0.45,
        max_admission_retries: 10,
        ..ServingPolicy::default()
    };
    let stats = simulate_serving_robust(
        &gpu,
        &geom,
        AttnMethod::Turbo { kv_bits: 4.0 },
        &reqs,
        &policy,
        Some(&health),
    );
    assert_eq!(stats.completed + stats.truncated + stats.rejected, reqs.len());
    println!(
        "4. hbm pressure: {} completed / {} truncated / {} rejected of {} \
         ({} demotion(s), {} admission retries)",
        stats.completed,
        stats.truncated,
        stats.rejected,
        reqs.len(),
        stats.demotions,
        stats.admission_retries
    );
    global.absorb(&health);

    println!("\nglobal health ledger:");
    for (name, n) in global.report() {
        println!("  {name:<20} {n}");
    }
    println!("\nno panics: every fault detected, degraded, and accounted for.");
}
