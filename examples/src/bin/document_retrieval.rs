//! Multi-hop document retrieval under attention approximation.
//!
//! Scenario: an agent follows a chain of cross-references through a
//! document index ("see section A → see table B → …"). Each hop is an
//! attention lookup over the same cached index, so KV-cache quantization
//! error compounds across hops exactly like chain-of-thought decoding.
//! Compares FP16, TurboAttention and KIVI end to end.

use turbo_model::backend::{Backend, Fp16Backend, KiviBackend, TurboBackend};
use turbo_model::{evaluate, EvalConfig, ModelProfile, RecallEpisode, TaskSuite};
use turbo_quant::BitWidth;
use turbo_tensor::TensorRng;

fn main() {
    let profile = ModelProfile::phi3_like();
    let suite = TaskSuite::bbh_proxy();

    // Walk one episode verbosely with each backend.
    let mut rng = TensorRng::new(99);
    let ep = RecallEpisode::generate_clustered(
        &mut rng,
        profile.vocab_size(),
        profile.cluster_size(),
        suite.n_pairs,
        suite.hops,
        suite.confusers,
    );
    println!(
        "episode: {} index entries, {}-hop chain, cue symbol #{}, answer #{}",
        ep.keys.len(),
        ep.hops,
        ep.cue,
        ep.answer
    );

    let backends: Vec<(&str, Box<dyn Backend>)> = vec![
        ("FP16", Box::new(Fp16Backend)),
        ("TurboAttention INT4", Box::new(TurboBackend::int4())),
        ("KIVI INT2", Box::new(KiviBackend::new(BitWidth::Int2))),
    ];

    for (name, backend) in &backends {
        let (ks, vs) = profile.episode_tensors(&ep, &mut TensorRng::new(123));
        let prepared = backend.prepare(&ks, &vs);
        let mut cur = ep.cue;
        print!("{name:>20}: #{cur}");
        for _ in 0..ep.hops {
            let qs = profile.query_rows(cur);
            let outs = prepared.query(&qs);
            cur = profile.decode(&outs);
            print!(" -> #{cur}");
        }
        println!(
            "   [{}]",
            if cur == ep.answer { "correct" } else { "WRONG" }
        );
    }

    // Aggregate accuracy over many episodes.
    println!("\naccuracy over 100 episodes ({}):", suite.name);
    let cfg = EvalConfig {
        episodes: 100,
        seed: 5,
    };
    for (name, backend) in &backends {
        let r = evaluate(backend.as_ref(), &profile, &suite, &cfg);
        println!("  {name:>20}: {:.1}%", r.accuracy * 100.0);
    }
}
