//! Shard drill: serves a long context across four shards, kills one
//! mid-episode, and watches the re-shard protocol migrate its slice to
//! the survivors with zero token loss.
//!
//! Four acts:
//!   1. a 32k-token context is partitioned across 4 shards by a
//!      CRC32-framed, versioned shard map (torn map writes are shown to
//!      be rejected, never adopted),
//!   2. a degraded-zone burst makes zone 1 *slow* — latency inflates
//!      4×, WAL rot is silently injected — and the dispatcher hedges
//!      around it while every breaker stays closed (slow ≠ dead),
//!   3. a shard in the rotted zone is killed: its WAL is torn, the
//!      surviving prefix migrates to the survivors at replay speed,
//!      only the lost suffix is re-prefilled, and the map's epoch bump
//!      invalidates every stale pre-migration dequant tile,
//!   4. the faulted episode's context fingerprint and the no-fault
//!      run's are compared bit for bit.
//!
//! Run with `cargo run --release --bin shard_drill`.

use turbo_gpusim::{
    run_sharded_episode, uniform_workload, AttnMethod, GpuSpec, ModelGeometry, ShardMap,
    ShardedConfig,
};
use turbo_robust::{ChaosAction, ChaosEvent, HealthEvent, HealthStats};

fn main() {
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let method = AttnMethod::Turbo { kv_bits: 3.0 };
    let seed = 2026;

    // 1. The shard map: a near-equal contiguous partition, CRC32-framed.
    let config = ShardedConfig {
        shards: 4,
        context_tokens: 32_768,
        // Checkpoint under a 20ms replay ceiling (the knob the fleet's
        // ReplayTuner steers): the WAL carries ~1000 records at any
        // instant, so a kill has real replay *and* real re-prefill.
        replay_budget_secs: Some(0.02),
        ..ShardedConfig::default()
    };
    let map = ShardMap::balanced(config.shards, config.context_tokens);
    println!(
        "1. shard map v{} epoch {}: {} tokens over {} shards",
        map.version, map.epoch, map.total_tokens, config.shards
    );
    for r in &map.assignments {
        println!("   shard {} owns [{:6}, {:6})", r.shard, r.start, r.end());
    }
    let bytes = map.encode();
    let torn = &bytes[..bytes.len() / 2];
    println!(
        "   torn map write ({} of {} bytes): {}",
        torn.len(),
        bytes.len(),
        ShardMap::decode(torn).unwrap_err()
    );

    // 2+3. One episode: a degraded-zone burst at t=0.5 rots zone 1's
    //      WALs and inflates its latency; the kill lands on shard 1
    //      (zone 1) at t=1.5, so recovery sees the compounded tear.
    let chaos = [
        ChaosEvent {
            time: 0.5,
            action: ChaosAction::DegradeZone {
                zone: 1,
                latency_factor: 4.0,
                wal_rot: 0.7,
                duration: 3.0,
            },
        },
        ChaosEvent {
            time: 1.5,
            action: ChaosAction::KillReplica {
                replica: 1,
                wal_cut: 0.9,
            },
        },
    ];
    let reqs = uniform_workload(8, 2.0, 256, 16, seed);
    let health = HealthStats::new();
    let stats = run_sharded_episode(
        &gpu,
        &geom,
        method,
        &reqs,
        &chaos,
        &config,
        seed,
        Some(&health),
    );
    println!(
        "2. degraded zone: {} window(s), {} hedged fan-outs ({} capped), \
         breakers opened: {}",
        stats.degraded_windows,
        stats.hedged,
        stats.hedge_saves,
        health.count(HealthEvent::BreakerOpened)
    );
    println!(
        "3. kill + re-shard: epoch {} after {} kill(s) — {} tokens migrated \
         via WAL replay, {} re-prefilled, {} lost; {} stale tiles purged",
        stats.map_epoch,
        stats.shard_kills,
        stats.migrated_tokens,
        stats.reprefilled_tokens,
        stats.lost_tokens,
        stats.stale_tiles_purged
    );
    for r in &stats.map.assignments {
        println!("   shard {} owns [{:6}, {:6})", r.shard, r.start, r.end());
    }
    println!(
        "   ledger: {} completed + {} truncated + {} rejected = {} submitted (exactly once)",
        stats.completed, stats.truncated, stats.rejected, stats.total
    );
    assert_eq!(stats.accounted(), stats.total);
    assert_eq!(stats.lost_tokens, 0);

    // 4. The faulted episode holds the same logical context as the
    //    no-fault twin, bit for bit.
    let clean = run_sharded_episode(&gpu, &geom, method, &reqs, &[], &config, seed, None);
    assert_eq!(stats.context_crc, clean.context_crc);
    println!(
        "4. context fingerprint {:08x} matches the no-fault run — \
         re-sharding lost nothing",
        stats.context_crc
    );
}
