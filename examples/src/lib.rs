//! Runnable examples for the TurboAttention reproduction.
//!
//! * `cargo run -p turbo-examples --bin quickstart` — the core API in a
//!   minute: quantized prefill, decode, accuracy and compression stats.
//! * `cargo run -p turbo-examples --bin chat_serving` — long-context chat
//!   serving with head-wise mixed precision across a whole layer.
//! * `cargo run -p turbo-examples --bin document_retrieval` — the
//!   multi-hop retrieval workload, comparing methods end to end.
//! * `cargo run -p turbo-examples --bin capacity_planner` — A100 serving
//!   capacity planning with the analytical cost model.

#![forbid(unsafe_code)]
